"""Deterministic fault injection for the execution engine.

A :class:`FaultPlan` assigns each (run, attempt) pair an injected fault —
or none — as a pure function of the plan's seed, so a chaos test that
fails can be replayed exactly.  Kinds:

* ``timeout`` — the worker hangs past its wall-clock budget (the engine
  must kill it and account a :class:`~repro.errors.RunTimeout`);
* ``kill``    — the worker hard-exits mid-run, simulating a segfault or
  the OOM killer (engine sees :class:`~repro.errors.WorkerCrashed`);
* ``error``   — the run raises :class:`InjectedFault`;
* ``corrupt`` — the worker returns a result whose payload no longer
  matches its checksum (engine must detect and retry, never store it);
* ``layout`` — the worker's memory layout is deterministically corrupted
  before simulation (see :data:`LAYOUT_CORRUPTIONS`); the guard
  subsystem (:mod:`repro.guard`) must catch every one of these;
* ``slow``  — the worker sleeps :attr:`FaultPlan.slow_s` seconds, then
  answers correctly (a brownout/latency fault, not a correctness one:
  deadlines and admission ladders must absorb it);
* ``torn``  — the worker computes the right answer but ships a torn
  pipe message (a truncated pickle); the parent must treat the
  undecodable message as a crash and retry, never hang or die.

:class:`CampaignFaults` layers coordinator-level chaos on top for
:mod:`repro.campaign`: a worker-fault plan plus a deterministic
coordinator kill (``ckill=N`` — hard exit after the Nth durable commit)
and disk-tier row corruption (:func:`corrupt_disk_tier`).

:func:`corrupt_store_entries` complements the plan by damaging entries of
an on-disk result store, exercising the store's quarantine path;
:func:`corrupt_layout` damages a :class:`~repro.layout.layout.MemoryLayout`
in one of :data:`LAYOUT_CORRUPTIONS` ways, bypassing the layout's safe
setters exactly like a buggy driver would.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

FAULT_KINDS = ("timeout", "kill", "error", "corrupt", "layout", "slow", "torn")


class InjectedFault(RuntimeError):
    """Exception raised inside a worker by an injected ``error`` fault."""


def unit_interval(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform value in [0, 1) for (seed, key, attempt)."""
    digest = hashlib.sha256(f"{seed}|{key}|{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """Per-kind injection probabilities, resolved deterministically by seed."""

    timeout: float = 0.0
    kill: float = 0.0
    error: float = 0.0
    corrupt: float = 0.0
    layout: float = 0.0
    slow: float = 0.0
    torn: float = 0.0
    slow_s: float = 0.25  # how long a ``slow`` fault stalls (not a rate)
    seed: int = 0

    def __post_init__(self):
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"fault rate {kind}={rate} outside [0, 1]")
        if sum(getattr(self, kind) for kind in FAULT_KINDS) > 1.0:
            raise ConfigError("fault rates sum to more than 1")
        if self.slow_s < 0:
            raise ConfigError(f"slow_s={self.slow_s} must be >= 0")

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault (if any) to inject into this run attempt.

        Pure in (plan, key, attempt): replaying a sweep with the same plan
        injects exactly the same faults at the same points.
        """
        u = unit_interval(self.seed, key, attempt)
        edge = 0.0
        for kind in FAULT_KINDS:
            edge += getattr(self, kind)
            if u < edge:
                return kind
        return None


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a CLI spec like ``"timeout=0.1,kill=0.05,corrupt=0.05,seed=7"``."""
    kwargs = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ConfigError(f"fault spec expects KIND=RATE, got {item!r}")
        name, _, value = item.partition("=")
        name = name.strip()
        try:
            if name == "seed":
                kwargs["seed"] = int(value)
            elif name == "slow_s":
                kwargs["slow_s"] = float(value)
            elif name in FAULT_KINDS:
                kwargs[name] = float(value)
            else:
                raise ConfigError(
                    f"unknown fault kind {name!r}; known: "
                    f"{', '.join(FAULT_KINDS)}, slow_s, seed"
                )
        except ValueError:
            raise ConfigError(f"bad fault value {value!r} for {name!r}") from None
    return FaultPlan(**kwargs)


@dataclass(frozen=True)
class CampaignFaults:
    """Fault schedule for campaign chaos tests.

    ``worker`` injects per-(item, attempt) worker faults exactly like an
    engine :class:`FaultPlan`.  ``coordinator_kill_after`` hard-exits the
    coordinator process (``os._exit(137)``) right after its Nth durable
    commit — between the disk-tier write and the journal event, the
    most adversarial instant — to prove resume correctness.
    ``tier_corrupt`` is the fraction of disk-tier rows
    :func:`corrupt_disk_tier` should damage between runs.
    """

    worker: Optional[FaultPlan] = None
    coordinator_kill_after: Optional[int] = None
    tier_corrupt: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.tier_corrupt <= 1.0:
            raise ConfigError(
                f"tier_corrupt={self.tier_corrupt} outside [0, 1]"
            )
        if (
            self.coordinator_kill_after is not None
            and self.coordinator_kill_after < 1
        ):
            raise ConfigError(
                f"ckill={self.coordinator_kill_after} must be >= 1"
            )


def parse_campaign_fault_spec(spec: str) -> CampaignFaults:
    """Parse a campaign fault spec.

    Worker fault kinds use :func:`parse_fault_spec` syntax; two extra
    keys drive the coordinator-level chaos::

        "kill=0.1,corrupt=0.05,seed=7,ckill=3,tier_corrupt=0.25"

    ``ckill=N`` kills the coordinator after its Nth commit;
    ``tier_corrupt=F`` asks :func:`corrupt_disk_tier` to damage fraction
    ``F`` of committed rows (applied by the chaos harness, not by the
    coordinator itself).
    """
    worker_parts = []
    kill_after: Optional[int] = None
    tier_corrupt = 0.0
    seed = 0
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ConfigError(f"fault spec expects KIND=VALUE, got {item!r}")
        name, _, value = item.partition("=")
        name = name.strip()
        try:
            if name == "ckill":
                kill_after = int(value)
            elif name == "tier_corrupt":
                tier_corrupt = float(value)
            elif name == "seed":
                seed = int(value)
                worker_parts.append(item)
            elif name == "slow_s" or name in FAULT_KINDS:
                worker_parts.append(item)
            else:
                raise ConfigError(
                    f"unknown campaign fault key {name!r}; known: "
                    f"{', '.join(FAULT_KINDS)}, seed, ckill, tier_corrupt"
                )
        except ValueError:
            raise ConfigError(f"bad fault value {value!r} for {name!r}") from None
    worker = parse_fault_spec(",".join(worker_parts)) if worker_parts else None
    if worker is not None and not any(
        getattr(worker, kind) for kind in FAULT_KINDS
    ):
        worker = None  # seed-only spec: no worker faults to inject
    return CampaignFaults(
        worker=worker,
        coordinator_kill_after=kill_after,
        tier_corrupt=tier_corrupt,
        seed=seed,
    )


def corrupt_disk_tier(path, fraction: float, seed: int = 0) -> int:
    """Damage a deterministic ``fraction`` of a campaign disk tier's rows.

    Overwrites the chosen rows' checksums in the SQLite ``results``
    table, so the next scan must quarantine them and the coordinator
    must re-simulate those items.  Returns the number of rows damaged.
    Chaos-test helper — the write path deliberately bypasses
    :class:`~repro.campaign.disktier.DiskTier`.
    """
    import sqlite3

    conn = sqlite3.connect(str(path))
    try:
        keys = [
            row[0]
            for row in conn.execute("SELECT key FROM results ORDER BY key")
        ]
        hit = 0
        for key in keys:
            if unit_interval(seed, key, 0) < fraction:
                conn.execute(
                    "UPDATE results SET sum = 'deadbeef' WHERE key = ?",
                    (key,),
                )
                hit += 1
        conn.commit()
        return hit
    finally:
        conn.close()


LAYOUT_CORRUPTIONS = (
    "overlap",         # alias one variable's base onto its predecessor's
    "swap_bases",      # exchange two variables' bases (semantic swap)
    "shift_base",      # slide the last-placed array by one element
    "shrink_dim",      # padded dim below the declared size
    "shrink",          # padded dim shrunk toward (not below) declared
    "zero_dim",        # a dimension collapses to zero
    "drop_base",       # a variable loses its placement
    "negative_base",   # base address below zero
    "misalign_base",   # base no longer element-aligned
    "rank_mismatch",   # dim-size tuple gains a bogus dimension
    "pad_explosion",   # one dimension blows up by orders of magnitude
)
"""Deterministic layout corruption kinds for chaos testing.

Each mutates a layout's private state directly — modelling a buggy
padding driver, not a misuse of the public API — and every one must be
caught by :mod:`repro.guard`: the structural kinds by the invariant
checker, ``swap_bases``/``shift_base`` by the semantic sanitizer, and
``pad_explosion`` by the overlap or memory-budget check.
"""


def choose_corruption(seed: int, key: str, attempt: int) -> str:
    """Deterministically pick a corruption kind for one run attempt."""
    u = unit_interval(seed, f"layout|{key}", attempt)
    return LAYOUT_CORRUPTIONS[int(u * len(LAYOUT_CORRUPTIONS))]


def corrupt_layout(prog, layout, kind: str, seed: int = 0) -> str:
    """Apply one :data:`LAYOUT_CORRUPTIONS` kind to ``layout`` in place.

    Victim selection is a pure function of ``seed`` so a chaos test that
    fails replays exactly.  Returns a description of the damage done.
    """
    if kind not in LAYOUT_CORRUPTIONS:
        raise ConfigError(
            f"unknown layout corruption {kind!r}; known: {LAYOUT_CORRUPTIONS}"
        )
    arrays = [d for d in prog.arrays if layout.has_base(d.name)]
    if not arrays:
        raise ConfigError("cannot corrupt a layout with no placed arrays")

    def pick(candidates, salt: str):
        u = unit_interval(seed, f"{kind}|{salt}", 0)
        return candidates[int(u * len(candidates))]

    if kind == "overlap":
        placed = sorted(
            (d for d in prog.decls if layout.has_base(d.name)),
            key=lambda d: layout.base(d.name),
        )
        if len(placed) < 2:
            raise ConfigError("overlap corruption needs two placed variables")
        victim = pick(placed[1:], "victim")
        index = placed.index(victim)
        layout._bases[victim.name] = layout.base(placed[index - 1].name)
        return f"aliased {victim.name} onto {placed[index - 1].name}"
    if kind == "swap_bases":
        if len(arrays) < 2:
            raise ConfigError("swap_bases corruption needs two placed arrays")
        # Prefer a same-size pair: the swap then passes every structural
        # check and only the semantic sanitizer can catch it.
        pair = None
        for i, a in enumerate(arrays):
            for b in arrays[i + 1:]:
                if layout.size_bytes(a.name) == layout.size_bytes(b.name):
                    pair = (a, b)
                    break
            if pair:
                break
        if pair is None:
            pair = (arrays[0], arrays[1])
        a, b = pair
        layout._bases[a.name], layout._bases[b.name] = (
            layout._bases[b.name], layout._bases[a.name],
        )
        return f"swapped bases of {a.name} and {b.name}"
    if kind == "shift_base":
        victim = max(arrays, key=lambda d: layout.base(d.name))
        layout._bases[victim.name] += victim.element_size
        return f"shifted {victim.name} by {victim.element_size}B"
    if kind == "shrink_dim":
        candidates = [d for d in arrays if d.dim_sizes[0] >= 2] or arrays
        victim = pick(candidates, "victim")
        sizes = list(layout.dim_sizes(victim.name))
        sizes[0] = victim.dim_sizes[0] - 1
        layout._dim_sizes[victim.name] = tuple(sizes)
        return f"shrank {victim.name} dim 0 to {sizes[0]}"
    if kind == "shrink":
        # Shrink an intra-padded dim back toward its declared size: the
        # declared floor still holds, strides stay self-consistent and
        # (the victim only getting smaller) nothing overlaps — only the
        # committed-size witness can condemn it.  With no intra-padded
        # array to sabotage, fall through to a below-declared shrink.
        padded = [
            (d, dim)
            for d in arrays
            for dim, extra in enumerate(layout.intra_pads(d.name))
            if extra > 0
        ]
        if padded:
            victim, dim = pick(padded, "victim")
            sizes = list(layout.dim_sizes(victim.name))
            sizes[dim] -= 1
            layout._dim_sizes[victim.name] = tuple(sizes)
            return f"shrank {victim.name} dim {dim} to {sizes[dim]} (>= declared)"
        victim = pick([d for d in arrays if d.dim_sizes[0] >= 2] or arrays, "victim")
        sizes = list(layout.dim_sizes(victim.name))
        sizes[0] = victim.dim_sizes[0] - 1
        layout._dim_sizes[victim.name] = tuple(sizes)
        return f"shrank {victim.name} dim 0 to {sizes[0]}"
    if kind == "zero_dim":
        victim = pick(arrays, "victim")
        sizes = list(layout.dim_sizes(victim.name))
        sizes[-1] = 0
        layout._dim_sizes[victim.name] = tuple(sizes)
        return f"zeroed {victim.name} dim {len(sizes) - 1}"
    if kind == "drop_base":
        victim = pick(arrays, "victim")
        del layout._bases[victim.name]
        return f"dropped placement of {victim.name}"
    if kind == "negative_base":
        victim = pick(arrays, "victim")
        layout._bases[victim.name] = -victim.element_size
        return f"placed {victim.name} at {-victim.element_size}"
    if kind == "misalign_base":
        candidates = [d for d in arrays if d.element_size > 1]
        if candidates:
            victim = pick(candidates, "victim")
            layout._bases[victim.name] += victim.element_size // 2
            return f"misaligned {victim.name} by {victim.element_size // 2}B"
        # Byte arrays cannot be misaligned; shifting a whole element is
        # still a corruption (semantic shift) the sanitizer catches.
        victim = max(arrays, key=lambda d: layout.base(d.name))
        layout._bases[victim.name] += 1
        return f"shifted byte array {victim.name} by 1B"
    if kind == "rank_mismatch":
        victim = pick(arrays, "victim")
        layout._dim_sizes[victim.name] = layout.dim_sizes(victim.name) + (2,)
        return f"appended a bogus dimension to {victim.name}"
    if kind == "pad_explosion":
        victim = pick(arrays, "victim")
        sizes = list(layout.dim_sizes(victim.name))
        sizes[0] *= 4099
        layout._dim_sizes[victim.name] = tuple(sizes)
        return f"exploded {victim.name} dim 0 to {sizes[0]}"
    raise AssertionError(f"unhandled corruption kind {kind}")  # pragma: no cover


def corrupt_store_entries(path, fraction: float, seed: int = 0) -> int:
    """Damage a deterministic ``fraction`` of a schema-2 store's entries.

    Overwrites the chosen entries' checksums so the next load must drop and
    quarantine them.  Returns the number of entries corrupted.  Chaos-test
    helper: writes the file directly, bypassing the store's atomic path,
    exactly like real bit rot would.
    """
    store_path = pathlib.Path(path)
    doc = json.loads(store_path.read_text())
    entries = doc.get("entries", {})
    hit = 0
    for key in sorted(entries):
        if unit_interval(seed, key, 0) < fraction:
            entries[key]["sum"] = "deadbeef"
            hit += 1
    store_path.write_text(json.dumps(doc))
    return hit
