"""Deterministic fault injection for the execution engine.

A :class:`FaultPlan` assigns each (run, attempt) pair an injected fault —
or none — as a pure function of the plan's seed, so a chaos test that
fails can be replayed exactly.  Kinds:

* ``timeout`` — the worker hangs past its wall-clock budget (the engine
  must kill it and account a :class:`~repro.errors.RunTimeout`);
* ``kill``    — the worker hard-exits mid-run, simulating a segfault or
  the OOM killer (engine sees :class:`~repro.errors.WorkerCrashed`);
* ``error``   — the run raises :class:`InjectedFault`;
* ``corrupt`` — the worker returns a result whose payload no longer
  matches its checksum (engine must detect and retry, never store it).

:func:`corrupt_store_entries` complements the plan by damaging entries of
an on-disk result store, exercising the store's quarantine path.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

FAULT_KINDS = ("timeout", "kill", "error", "corrupt")


class InjectedFault(RuntimeError):
    """Exception raised inside a worker by an injected ``error`` fault."""


def unit_interval(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform value in [0, 1) for (seed, key, attempt)."""
    digest = hashlib.sha256(f"{seed}|{key}|{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """Per-kind injection probabilities, resolved deterministically by seed."""

    timeout: float = 0.0
    kill: float = 0.0
    error: float = 0.0
    corrupt: float = 0.0
    seed: int = 0

    def __post_init__(self):
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"fault rate {kind}={rate} outside [0, 1]")
        if sum(getattr(self, kind) for kind in FAULT_KINDS) > 1.0:
            raise ConfigError("fault rates sum to more than 1")

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault (if any) to inject into this run attempt.

        Pure in (plan, key, attempt): replaying a sweep with the same plan
        injects exactly the same faults at the same points.
        """
        u = unit_interval(self.seed, key, attempt)
        edge = 0.0
        for kind in FAULT_KINDS:
            edge += getattr(self, kind)
            if u < edge:
                return kind
        return None


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a CLI spec like ``"timeout=0.1,kill=0.05,corrupt=0.05,seed=7"``."""
    kwargs = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ConfigError(f"fault spec expects KIND=RATE, got {item!r}")
        name, _, value = item.partition("=")
        name = name.strip()
        try:
            if name == "seed":
                kwargs["seed"] = int(value)
            elif name in FAULT_KINDS:
                kwargs[name] = float(value)
            else:
                raise ConfigError(
                    f"unknown fault kind {name!r}; known: "
                    f"{', '.join(FAULT_KINDS)}, seed"
                )
        except ValueError:
            raise ConfigError(f"bad fault value {value!r} for {name!r}") from None
    return FaultPlan(**kwargs)


def corrupt_store_entries(path, fraction: float, seed: int = 0) -> int:
    """Damage a deterministic ``fraction`` of a schema-2 store's entries.

    Overwrites the chosen entries' checksums so the next load must drop and
    quarantine them.  Returns the number of entries corrupted.  Chaos-test
    helper: writes the file directly, bypassing the store's atomic path,
    exactly like real bit rot would.
    """
    store_path = pathlib.Path(path)
    doc = json.loads(store_path.read_text())
    entries = doc.get("entries", {})
    hit = 0
    for key in sorted(entries):
        if unit_interval(seed, key, 0) < fraction:
            entries[key]["sum"] = "deadbeef"
            hit += 1
    store_path.write_text(json.dumps(doc))
    return hit
