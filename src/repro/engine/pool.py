"""Long-lived worker pool: warm engine subprocesses shared across sweeps.

:class:`ExperimentEngine` historically spawned its worker subprocesses at
the start of every :meth:`~repro.engine.core.ExperimentEngine.run_many`
and tore them down at the end — the right life cycle for a one-shot
sweep, but pure overhead for a long-lived service dispatching many small
micro-batches (``repro serve``): every batch would pay process fork and
import costs before simulating anything.

:class:`WorkerPool` decouples worker life time from sweep life time.  A
pool owns up to ``jobs`` worker subprocesses; an engine constructed with
``ExperimentEngine(config, pool=pool)`` leases workers for the duration
of one ``run_many`` and releases them back — still warm — when the sweep
finishes.  Dead or mid-task workers are culled on release, so a crash in
one batch never poisons the next.

The pool is deliberately **not** thread-safe: it is designed to be owned
by a single dispatcher thread (the serve micro-batcher), mirroring how
the engine itself is driven.  Guard it externally if you must share it.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional

from repro.errors import EngineError


class WorkerPool:
    """A bounded set of warm engine worker subprocesses.

    ``jobs`` caps how many workers exist at once.  Workers are spawned
    lazily on :meth:`lease` (or eagerly via :meth:`warm`) and live until
    :meth:`close`, a crash, or being caught mid-task on release.
    """

    def __init__(self, jobs: int = 4, ctx=None):
        from repro.engine.core import _mp_context

        if jobs < 1:
            raise EngineError(f"worker pool needs at least 1 job, got {jobs}")
        self.jobs = jobs
        self._ctx = ctx or _mp_context()
        self._idle: List = []
        self._leased = 0
        self._next_slot = 0
        self._closed = False

    # -- introspection ------------------------------------------------------

    @property
    def ctx(self):
        """The multiprocessing context workers are spawned from."""
        return self._ctx

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def idle_count(self) -> int:
        """Warm workers currently parked in the pool."""
        return len(self._idle)

    @property
    def leased_count(self) -> int:
        """Workers currently out on lease to an engine."""
        return self._leased

    # -- life cycle ---------------------------------------------------------

    def warm(self, count: Optional[int] = None) -> int:
        """Pre-spawn idle workers so the first batch pays no fork cost.

        Returns the number of idle workers after warming (capped at
        ``jobs``).
        """
        self._require_open()
        want = self.jobs if count is None else max(0, min(count, self.jobs))
        while len(self._idle) < want:
            self._idle.append(self._spawn())
        return len(self._idle)

    def lease(self, count: int) -> List:
        """Hand out up to ``count`` live workers (at least one).

        Warm idle workers are reused first; the rest are spawned.  Dead
        idle workers discovered here are culled silently.

        The lease is atomic: if a spawn fails partway, every worker
        already gathered for this lease goes back to the idle set (live
        ones warm, corpses culled) before the error propagates — a
        failed lease can never leak a partial lease that is neither
        returned nor released, silently shrinking the pool.
        """
        self._require_open()
        count = max(1, min(count, self.jobs))
        leased: List = []
        try:
            while self._idle and len(leased) < count:
                worker = self._idle.pop()
                if worker.proc.is_alive():
                    leased.append(worker)
                else:
                    worker.kill()
            while len(leased) < count:
                leased.append(self._spawn())
        except BaseException:
            for worker in leased:
                if worker.proc.is_alive() and worker.task is None:
                    self._idle.append(worker)
                else:  # pragma: no cover - spawn died under us
                    worker.kill()
            raise
        self._leased += len(leased)
        return leased

    @contextlib.contextmanager
    def leased(self, count: int) -> Iterator[List]:
        """Context-manager lease: workers come back whatever happens.

        Yields the leased worker list and releases *that same list
        object* on exit — callers that replace a crashed worker must
        mutate the yielded list in place (as the engine's ``_replace``
        does) so the replacement, not the corpse, is returned to the
        pool.  An exception inside the block still releases every
        worker, so a crashing sweep can never leak leases until the
        pool is silently exhausted.
        """
        workers = self.lease(count)
        try:
            yield workers
        finally:
            self.release(workers)

    def release(self, workers) -> None:
        """Return leased workers; idle live ones are kept warm.

        A worker still holding a task (an aborted sweep) or whose
        process died is killed rather than reused — its pipe may hold a
        half-delivered message that would corrupt the next sweep.
        """
        for worker in workers:
            self._leased = max(0, self._leased - 1)
            if self._closed or worker.task is not None or not worker.proc.is_alive():
                worker.kill()
            else:
                self._idle.append(worker)

    def close(self) -> None:
        """Stop every idle worker; later leases raise.

        Workers out on lease are killed when they come back via
        :meth:`release`.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._idle:
            worker.stop()
        self._idle.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ----------------------------------------------------------

    def _spawn(self):
        from repro.engine.core import _Worker

        worker = _Worker(self._ctx, slot=self._next_slot)
        self._next_slot += 1
        return worker

    def _require_open(self) -> None:
        if self._closed:
            raise EngineError("worker pool is closed")
