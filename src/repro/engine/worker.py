"""Worker-process side of the execution engine.

Each worker owns a private memoizing :class:`~repro.experiments.runner.Runner`
(so paddings and programs are reused across the tasks it serves) and talks
to the parent over a pipe:

* parent -> worker: ``("task", task_id, RunRequest, simulator, fault,
  collect, guard, jit, tier)``, ``("ping", token)`` or ``("stop",)``;
  ``fault`` is ``None`` or ``(kind, param)`` from the fault-injection
  plan (a ``layout`` fault's param names the corruption kind, a
  ``slow`` fault's is the stall in seconds), ``collect`` asks the
  worker to gather a metrics snapshot for the task, ``guard`` is a
  :class:`~repro.guard.config.GuardConfig` record or ``None``, ``jit``
  is the trace-engine policy (default ``"auto"``) and ``tier`` the
  analytic tier-0 policy (default ``"sim"``; older parents may omit
  trailing fields).  A ``ping`` is the pool supervisor's heartbeat
  (:mod:`repro.resilience`): a live, unwedged worker echoes
  ``("pong", token)`` immediately.
* worker -> parent: ``("ok", task_id, stats_payload, checksum, metrics,
  guard_report, tier)`` (``metrics`` is a registry snapshot or ``None``;
  ``guard_report`` is a :class:`~repro.guard.config.GuardReport` record
  or ``None``; ``tier`` says where the runner's answer came from, e.g.
  ``"analytic"`` or ``"sim"``) or ``("error", task_id, message)``.

The checksum is computed *before* any injected corruption, so a mangled
payload is detectable by the parent — exactly like a worker whose memory
was scribbled on.  Crash containment is the parent's job: this module
deliberately lets injected kills take the whole process down.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.engine.faults import InjectedFault, corrupt_layout
from repro.engine.store import checksum
from repro.guard import runtime as guard_runtime
from repro.guard.config import GuardConfig
from repro.obs import runtime as obs

#: exit codes chosen to mimic SIGKILL / SIGABRT deaths
KILL_EXIT_CODE = 137
OOM_EXIT_CODE = 134


def worker_main(conn) -> None:
    """Serve tasks until told to stop or the pipe closes."""
    from repro.experiments.runner import Runner

    # Forked workers inherit the parent's metrics registry and span/guard
    # sinks (which may hold the parent's journal file handle).  Start clean
    # so a worker never double-counts or writes to the parent's journal —
    # guard verdicts travel home on the result pipe and the parent
    # re-journals them.
    obs.disable()
    obs.reset()
    guard_runtime.clear_sinks()
    guard_runtime.deactivate()
    runner = Runner()
    parent = os.getppid()
    while True:
        try:
            # Forked siblings (and this process itself) inherit the
            # parent's pipe ends, so a SIGKILLed parent produces no EOF
            # here — an orphaned worker would block in recv() forever.
            # Poll with a bounded wait and watch for reparenting instead:
            # when the parent dies, getppid() changes and we exit.
            while not conn.poll(1.0):
                if os.getppid() != parent:
                    return
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg[0] == "ping":
            _send(conn, ("pong", msg[1] if len(msg) > 1 else None))
            continue
        if msg[0] != "task":
            return
        _, task_id, request, simulator, fault = msg[:5]
        collect = bool(msg[5]) if len(msg) > 5 else False
        guard_record = msg[6] if len(msg) > 6 else None
        runner.jit = msg[7] if len(msg) > 7 else "auto"
        runner.predict = msg[8] if len(msg) > 8 else "sim"
        kind, param = fault if fault else (None, None)
        if kind == "kill":
            os._exit(KILL_EXIT_CODE)
        if kind == "timeout":
            # Hang well past the parent's deadline; if the parent's budget
            # is somehow larger, fail loudly instead of succeeding.
            time.sleep(param)
            _send(conn, ("error", task_id, "InjectedFault: injected hang elapsed"))
            continue
        if kind == "slow":
            # Stall, then answer correctly: a latency fault the parent's
            # deadlines and the serve admission ladder must absorb.
            time.sleep(param or 0.0)
            kind = None
        try:
            if kind == "error":
                raise InjectedFault(f"injected failure in {request.program}")
            if collect:
                obs.reset()
                obs.enable()
            guard = (
                GuardConfig.from_record(guard_record) if guard_record else None
            )
            if kind == "layout":
                # Damage a copy of the layout right before simulation; the
                # guard (when active) must stop it reaching the simulator.
                runner.layout_saboteur = (
                    lambda prog, layout: corrupt_layout(prog, layout, param)
                )
            try:
                with guard_runtime.activated(guard):
                    stats = runner.run(
                        request.program,
                        request.heuristic,
                        request.cache,
                        size=request.size,
                        pad_cache=request.pad_cache,
                        m_lines=request.m_lines,
                        max_outer=request.max_outer,
                        seed=request.seed,
                        simulator=simulator,
                    )
                metrics = obs.snapshot() if collect else None
            finally:
                runner.layout_saboteur = None
                if collect:
                    obs.disable()
            report = (
                runner.last_guard.to_record() if runner.last_guard else None
            )
            payload = dataclasses.asdict(stats)
            digest = checksum(payload)
            if kind == "corrupt":
                payload = dict(payload, misses=payload["misses"] ^ 0x5A5A)
            tier = runner.last_tier
            if kind == "torn":
                _send_torn(
                    conn, ("ok", task_id, payload, digest, metrics, report, tier)
                )
                continue
            _send(conn, ("ok", task_id, payload, digest, metrics, report, tier))
        except MemoryError:  # pragma: no cover - needs a real OOM
            os._exit(OOM_EXIT_CODE)
        except BaseException as exc:
            _send(conn, ("error", task_id, f"{type(exc).__name__}: {exc}"))


def _send(conn, msg) -> None:
    try:
        conn.send(msg)
    except (BrokenPipeError, OSError):  # parent is gone; die quietly
        os._exit(1)


def _send_torn(conn, msg) -> None:
    """Ship a deliberately torn message: a truncated pickle payload.

    The pipe frame itself is well-formed (the stream does not desync),
    but the payload cannot be unpickled — modelling a worker that died
    or was scribbled on mid-write.  The parent must treat the
    undecodable message as a worker crash and retry the task.
    """
    import pickle

    blob = pickle.dumps(msg)
    try:
        conn.send_bytes(blob[: max(1, len(blob) // 2)])
    except (BrokenPipeError, OSError):
        os._exit(1)
