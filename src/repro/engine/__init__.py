"""Fault-tolerant experiment execution engine.

Submodules:

* :mod:`repro.engine.core`    — parallel executor (timeouts, retries,
  crash containment, graceful degradation);
* :mod:`repro.engine.store`   — crash-safe persistent result store;
* :mod:`repro.engine.journal` — structured JSONL run journal;
* :mod:`repro.engine.faults`  — deterministic fault injection;
* :mod:`repro.engine.pool`    — long-lived warm worker pool (``repro serve``);
* :mod:`repro.engine.plan`    — figure planning / the ``run-all`` pipeline.

``core`` and ``plan`` are loaded lazily because they import the experiment
runner, which itself persists through :mod:`repro.engine.store`.
"""

from repro.engine.faults import FaultPlan, InjectedFault, parse_fault_spec
from repro.engine.journal import NullJournal, RunJournal, read_journal
from repro.engine.store import CrashSafeStore, checksum

_LAZY = {
    "EngineConfig": "repro.engine.core",
    "ExperimentEngine": "repro.engine.core",
    "RunOutcome": "repro.engine.core",
    "WorkerPool": "repro.engine.pool",
    "PlanningRunner": "repro.engine.plan",
    "PrimedRunner": "repro.engine.plan",
    "SweepReport": "repro.engine.plan",
    "collect_requests": "repro.engine.plan",
    "run_figures": "repro.engine.plan",
    "DEFAULT_FIGURES": "repro.engine.plan",
}

__all__ = [
    "CrashSafeStore", "FaultPlan", "InjectedFault", "NullJournal",
    "RunJournal", "checksum", "parse_fault_spec", "read_journal",
    *sorted(_LAZY),
]


def __getattr__(name):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
