"""Figure planning: turn experiment modules into engine request lists.

Every figure module drives a :class:`~repro.experiments.runner.Runner`;
:class:`PlanningRunner` substitutes for it and *records* the requests a
figure would simulate instead of simulating them.  :func:`run_figures`
is the ``repro run-all`` pipeline:

1. plan  — replay each figure's ``compute`` against a PlanningRunner;
2. execute — push the deduplicated requests through the
   :class:`~repro.engine.core.ExperimentEngine` (parallel, fault-tolerant,
   resumable);
3. render — replay ``compute`` against a runner primed with the engine's
   results (pure cache hits) and render the figures.

A figure whose runs partially failed renders as a placeholder line rather
than silently re-simulating (or fabricating) the missing data.
"""

from __future__ import annotations

import inspect
import pathlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cache.stats import CacheStats
from repro.engine.core import EngineConfig, ExperimentEngine, RunOutcome
from repro.engine.journal import NullJournal, RunJournal
from repro.engine.store import CrashSafeStore
from repro.errors import ConfigError, EngineError
from repro.experiments.runner import Runner, RunRequest, request_key
from repro.guard import runtime as guard_runtime
from repro.obs import runtime as obs

DEFAULT_FIGURES = (
    "table2", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15",
)
"""The default ``run-all`` set: every non-sweep evaluation figure."""

STORE_FILENAME = "runner_cache.json"
JOURNAL_FILENAME = "journal.jsonl"


class PlanningRunner(Runner):
    """Records the requests a figure would simulate, without simulating.

    ``run`` returns empty stats (figures only combine the numbers, and the
    planning pass discards their output); ``padding`` stays real, so
    compile-time-only figures like Table 2 still work against it.
    """

    def __init__(self):
        super().__init__()
        self.requests: List[RunRequest] = []
        self._seen = set()

    def run(self, name, heuristic="original", cache=None, size=None,
            pad_cache=None, m_lines=4, max_outer="auto", seed=12345,
            simulator="fast"):
        """Record the request and return empty placeholder stats."""
        request = self.request_for(
            name, heuristic, cache, size, pad_cache, m_lines, max_outer, seed
        )
        if request not in self._seen:
            self._seen.add(request)
            self.requests.append(request)
        return CacheStats()


class PrimedRunner(Runner):
    """Serves only pre-loaded results; a miss raises instead of simulating.

    Used for the render phase so a run that *failed* in the engine cannot
    sneak back in as an unbounded in-process simulation.
    """

    def run(self, name, heuristic="original", cache=None, size=None,
            pad_cache=None, m_lines=4, max_outer="auto", seed=12345,
            simulator="fast"):
        """Serve the primed result, raising EngineError on a miss."""
        request = self.request_for(
            name, heuristic, cache, size, pad_cache, m_lines, max_outer, seed
        )
        if request not in self._stats:
            raise EngineError(f"no result for run {request_key(request)}")
        return self._stats[request]


def figure_modules() -> Dict[str, object]:
    """Name -> module map of every runnable table/figure."""
    from repro import experiments

    modules = {
        "table2": experiments.table2,
        "conflicts3c": experiments.conflict_fraction,
    }
    for i in range(8, 18):
        modules[f"fig{i}"] = getattr(experiments, f"fig{i}")
    return modules


def _call_compute(module, runner, programs=None):
    params = inspect.signature(module.compute).parameters
    kwargs = {}
    if programs:
        if "programs" in params:
            kwargs["programs"] = tuple(programs)
        elif "kernels" in params:
            kwargs["kernels"] = tuple(programs)
    return module.compute(runner, **kwargs)


def collect_requests(
    figures: Sequence[str] = DEFAULT_FIGURES,
    programs: Optional[Sequence[str]] = None,
) -> List[RunRequest]:
    """Plan: the deduplicated requests the given figures would simulate."""
    modules = figure_modules()
    unknown = [name for name in figures if name not in modules]
    if unknown:
        raise ConfigError(
            f"unknown figure(s) {unknown}; known: {sorted(modules)}"
        )
    planner = PlanningRunner()
    for name in figures:
        _call_compute(modules[name], planner, programs)
    return planner.requests


@dataclass
class SweepReport:
    """Everything ``run-all`` produced."""

    outcomes: List[RunOutcome]
    renders: Dict[str, str]  # figure name -> rendered text (or placeholder)
    wall_time: float
    store_path: Optional[pathlib.Path] = None
    journal_path: Optional[pathlib.Path] = None

    def counts(self) -> Dict[str, int]:
        """Tally outcomes by status (``ok``/``degraded``/``cached``/
        ``rolled_back``/``failed``)."""
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    @property
    def failures(self) -> List[RunOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def rollbacks(self) -> List[RunOutcome]:
        """Runs the regression guard rolled back to the original layout."""
        return [o for o in self.outcomes if o.status == "rolled_back"]


def run_figures(
    figures: Sequence[str] = DEFAULT_FIGURES,
    programs: Optional[Sequence[str]] = None,
    config: Optional[EngineConfig] = None,
    cache_dir: Optional[str] = None,
    journal_path: Optional[str] = None,
) -> SweepReport:
    """Plan, execute and render a set of figures through the engine."""
    start = time.monotonic()
    with obs.span("plan.collect", figures=len(figures)):
        requests = collect_requests(figures, programs)

    store = None
    store_path = None
    if cache_dir:
        store_path = pathlib.Path(cache_dir) / STORE_FILENAME
        store = CrashSafeStore(store_path)
        if journal_path is None:
            journal_path = pathlib.Path(cache_dir) / JOURNAL_FILENAME
    journal = RunJournal(journal_path) if journal_path else NullJournal()

    def _journal_span(record: dict) -> None:
        journal.emit("span", **record)

    def _journal_guard(event: str, fields: dict) -> None:
        # Parent-side guard events (e.g. a strict driver check during
        # planning); worker-side verdicts are re-journaled by the engine.
        journal.emit(event, **fields)

    engine = ExperimentEngine(config)
    obs.add_span_sink(_journal_span)
    guard_runtime.add_sink(_journal_guard)
    try:
        with obs.span("plan.execute", requests=len(requests)):
            outcomes = engine.run_many(requests, store=store, journal=journal)
    finally:
        guard_runtime.remove_sink(_journal_guard)
        obs.remove_span_sink(_journal_span)
        journal.close()

    runner = PrimedRunner()
    for outcome in outcomes:
        if outcome.stats is not None:
            runner.prime(outcome.request, outcome.stats)

    modules = figure_modules()
    renders: Dict[str, str] = {}
    with obs.span("plan.render", figures=len(figures)):
        for name in figures:
            module = modules[name]
            try:
                renders[name] = module.render(
                    _call_compute(module, runner, programs)
                )
            except EngineError as exc:
                renders[name] = f"[{name} incomplete: {exc}]"
    return SweepReport(
        outcomes=outcomes,
        renders=renders,
        wall_time=time.monotonic() - start,
        store_path=store_path,
        journal_path=pathlib.Path(journal_path) if journal_path else None,
    )
