"""Fault-tolerant parallel execution engine.

:class:`ExperimentEngine` runs many :class:`~repro.experiments.runner.RunRequest`
simulations across worker subprocesses with:

* **crash containment** — a worker segfault/OOM/exception marks that run
  and the sweep continues on a fresh worker;
* **per-run wall-clock timeouts** — hung workers are killed, not waited on;
* **bounded retries** with exponential backoff and deterministic jitter;
* **graceful degradation** — when the fast engines keep failing, one last
  attempt runs on the reference simulator and a success is tagged
  ``degraded``;
* **resumability** — completed runs found in the crash-safe store are
  returned as ``cached`` without re-simulation;
* **observability** — every attempt is journaled (see
  :mod:`repro.engine.journal`).

A sweep never raises out of :meth:`ExperimentEngine.run_many` because one
run misbehaved: every request comes back as a :class:`RunOutcome` whose
status is ``ok``, ``degraded``, ``cached``, ``rolled_back`` or ``failed``.

When :attr:`EngineConfig.guard` is set, workers run each transformation
under :mod:`repro.guard`; the verdict rides back with the result, is
re-journaled parent-side (``guard_violation`` / ``guard_rollback``
events) and a rollback becomes the ``rolled_back`` terminal status.
"""

from __future__ import annotations

import contextlib
import heapq
import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Sequence

from repro.cache.stats import CacheStats
from repro.engine.faults import FaultPlan, choose_corruption, unit_interval
from repro.engine.journal import NullJournal
from repro.engine.store import checksum
from repro.engine.worker import worker_main
from repro.errors import EngineError, RunTimeout, WorkerCrashed
from repro.guard.config import GuardConfig
from repro.obs import runtime as obs
from repro.experiments.runner import (
    RunRequest,
    pack_record,
    request_key,
    unpack_record,
)

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"
STATUS_CACHED = "cached"
STATUS_ROLLED_BACK = "rolled_back"


@dataclass(frozen=True)
class EngineConfig:
    """Execution policy for a sweep."""

    jobs: int = 4
    timeout: float = 300.0  # per-attempt wall clock, seconds
    retries: int = 2  # extra attempts after the first, per simulator stage
    backoff_base: float = 0.25  # seconds; 0 disables waiting (tests)
    backoff_cap: float = 30.0
    fallback: bool = True  # degrade to the reference simulator
    fallback_timeout_factor: float = 4.0  # reference sim is slower
    seed: int = 0  # jitter seed
    faults: Optional[FaultPlan] = None
    guard: Optional[GuardConfig] = None  # transformation guardrail policy
    jit: str = "auto"  # trace-engine policy workers apply (repro.jit)
    tier: str = "sim"  # analytic tier-0 policy (repro.analysis.predict)


@dataclass
class RunOutcome:
    """Terminal state of one request."""

    request: RunRequest
    status: str
    stats: Optional[CacheStats] = None
    attempts: int = 0
    duration: float = 0.0  # wall clock across all attempts
    error: Optional[str] = None
    guard: Optional[dict] = None  # GuardReport record, when a guard ran
    tier: Optional[str] = None  # where the worker's answer came from
    # ("analytic"/"memory"/"sim"/... — None for failures and old workers)

    @property
    def key(self) -> str:
        return request_key(self.request)


@dataclass
class _Task:
    index: int
    request: RunRequest
    key: str
    simulator: str = "fast"
    attempts: int = 0  # attempts started in the current stage
    total_attempts: int = 0  # across stages (fault-plan and jitter index)
    started_at: float = 0.0
    total_time: float = 0.0
    enqueued_at: float = 0.0  # when it last became ready (queue-wait metric)
    fallback_used: bool = False
    last_error: Optional[str] = None


class _Worker:
    """One subprocess plus its pipe and current assignment."""

    def __init__(self, ctx, slot: int = 0):
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=worker_main, args=(child,), daemon=True)
        self.proc.start()
        child.close()
        self.task: Optional[_Task] = None
        self.deadline = float("inf")
        self.slot = slot  # stable identity across replacements

    def kill(self) -> None:
        try:
            self.proc.kill()
            self.proc.join(5)
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass

    def stop(self) -> None:
        """Polite shutdown for an idle worker."""
        try:
            self.conn.send(("stop",))
            self.proc.join(2)
        except (OSError, ValueError):
            pass
        if self.proc.is_alive():  # pragma: no cover - stubborn worker
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover
                pass


class ExperimentEngine:
    """Run simulation requests in parallel, surviving worker failure.

    ``pool`` is an optional :class:`~repro.engine.pool.WorkerPool`: with
    one, workers are leased warm for each sweep and released back alive
    when it finishes, so a long-lived caller (``repro serve``) pays the
    subprocess spawn cost once, not per micro-batch.  Without one, each
    :meth:`run_many` spawns and tears down its own workers as before.
    """

    def __init__(self, config: Optional[EngineConfig] = None, pool=None):
        self.config = config or EngineConfig()
        self.pool = pool

    # -- public API ---------------------------------------------------------

    def run_many(
        self,
        requests: Sequence[RunRequest],
        store=None,
        journal=None,
    ) -> List[RunOutcome]:
        """Execute every request; one outcome per input, in input order.

        ``store`` is a :class:`~repro.engine.store.CrashSafeStore` (or
        anything with get/put of packed records): hits short-circuit to
        ``cached`` outcomes and new results are persisted as they finish,
        which is what makes a killed sweep resumable.  ``journal`` is a
        :class:`~repro.engine.journal.RunJournal`.
        """
        journal = journal or NullJournal()
        outcomes: Dict[str, RunOutcome] = {}
        tasks: List[_Task] = []
        scheduled = set()
        for request in requests:
            key = request_key(request)
            if key in outcomes or key in scheduled:
                continue
            scheduled.add(key)
            cached = self._lookup(store, key)
            if cached is not None:
                stats, status = cached
                outcomes[key] = RunOutcome(request, STATUS_CACHED, stats)
                obs.counter_add(
                    "repro_engine_outcomes_total", 1,
                    "terminal run outcomes, by status", status=STATUS_CACHED,
                )
                journal.emit(
                    "finish", run=key, status=STATUS_CACHED,
                    stored_status=status, attempts=0, duration=0.0,
                )
            else:
                tasks.append(_Task(index=len(tasks), request=request, key=key))
        if tasks:
            with obs.span("engine.execute", tasks=len(tasks)):
                self._execute(tasks, outcomes, store, journal)
        return [outcomes[request_key(r)] for r in requests]

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _lookup(store, key: str):
        if store is None:
            return None
        record = store.get(key)
        if record is None:
            return None
        try:
            return unpack_record(record)
        except (TypeError, KeyError):
            return None  # malformed entry: re-run it

    def _execute(self, tasks, outcomes, store, journal) -> None:
        cfg = self.config
        # Worker life cycle is context-managed either way: the pool's
        # leased() returns the (in-place mutated) worker list however the
        # sweep ends — so replacements go back warm and an exception can
        # never leak leases — and owned workers are stopped the same way.
        stack = contextlib.ExitStack()
        if self.pool is not None:
            ctx = self.pool.ctx
            workers = stack.enter_context(
                self.pool.leased(min(cfg.jobs, len(tasks)))
            )
        else:
            ctx = _mp_context()
            workers = stack.enter_context(
                _owned_workers(ctx, max(1, min(cfg.jobs, len(tasks))))
            )
        now = time.monotonic()
        for task in tasks:
            task.enqueued_at = now
        ready: List[_Task] = list(tasks)
        delayed: List = []  # heap of (ready_time, tiebreak, task)
        seq = 0
        remaining = len(tasks)

        def finish(
            task: _Task, status: str, stats=None, error=None, guard=None,
            tier=None,
        ) -> None:
            nonlocal remaining
            outcomes[task.key] = RunOutcome(
                task.request, status, stats,
                attempts=task.total_attempts,
                duration=round(task.total_time, 6),
                error=error,
                guard=guard,
                tier=tier,
            )
            journal.emit(
                "finish", run=task.key, status=status,
                attempts=task.total_attempts,
                duration=round(task.total_time, 6),
                **({"error": error} if error else {}),
                **({"tier": tier} if tier else {}),
            )
            if stats is not None and store is not None:
                store.put(task.key, pack_record(stats, status))
            obs.counter_add(
                "repro_engine_outcomes_total", 1,
                "terminal run outcomes, by status", status=status,
            )
            remaining -= 1

        def attempt_failed(task: _Task, exc: EngineError) -> None:
            nonlocal seq
            now = time.monotonic()
            task.total_time += now - task.started_at
            task.last_error = f"{type(exc).__name__}: {exc}"
            if task.attempts <= cfg.retries:
                delay = self._backoff(task)
                obs.counter_add(
                    "repro_engine_retries_total", 1,
                    "attempts re-queued after a failure",
                )
                journal.emit(
                    "retry", run=task.key, attempt=task.total_attempts,
                    delay=round(delay, 3), reason=task.last_error,
                )
                seq += 1
                heapq.heappush(delayed, (now + delay, seq, task))
            elif cfg.fallback and not task.fallback_used:
                task.fallback_used = True
                task.simulator = "reference"
                task.attempts = 0
                obs.counter_add(
                    "repro_engine_fallbacks_total", 1,
                    "runs degraded to the reference simulator",
                )
                journal.emit(
                    "fallback", run=task.key, simulator="reference",
                    reason=task.last_error,
                )
                seq += 1
                heapq.heappush(delayed, (now, seq, task))
            else:
                finish(task, STATUS_FAILED, error=task.last_error)

        def handle_result(worker: _Worker, msg) -> None:
            task = worker.task
            worker.task = None
            worker.deadline = float("inf")
            obs.counter_add(
                "repro_engine_worker_busy_seconds_total",
                max(0.0, time.monotonic() - task.started_at),
                "wall-clock seconds each worker slot spent on tasks",
                worker=str(worker.slot),
            )
            if msg[0] == "error":
                attempt_failed(task, EngineError(msg[2]))
                return
            payload, digest = msg[2], msg[3]
            if len(msg) > 4 and msg[4] is not None:
                try:
                    obs.merge_snapshot(msg[4])
                except Exception:  # never fail a run over metrics
                    pass
            guard_record = msg[5] if len(msg) > 5 else None
            tier = msg[6] if len(msg) > 6 else None
            stats = validate_payload(payload, digest)
            if stats is None:
                attempt_failed(
                    task, WorkerCrashed("result payload failed checksum")
                )
                return
            task.total_time += time.monotonic() - task.started_at
            self._journal_guard(journal, task.key, guard_record)
            status = STATUS_DEGRADED if task.simulator == "reference" else STATUS_OK
            if guard_record and guard_record.get("status") == "rolled_back":
                status = STATUS_ROLLED_BACK
            finish(task, status, stats=stats, guard=guard_record, tier=tier)

        try:
            while remaining > 0:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    task = heapq.heappop(delayed)[2]
                    task.enqueued_at = now
                    ready.append(task)
                for worker in workers:
                    if worker.task is None and ready:
                        task = ready.pop(0)
                        if not self._dispatch(worker, task, journal):
                            self._replace(workers, worker, ctx)
                            attempt_failed(
                                task,
                                WorkerCrashed("worker unreachable at dispatch"),
                            )
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    if delayed:
                        time.sleep(
                            min(0.25, max(0.001, delayed[0][0] - time.monotonic()))
                        )
                        continue
                    break  # pragma: no cover - no work left but remaining>0
                horizon = min(w.deadline for w in busy)
                if delayed:
                    horizon = min(horizon, delayed[0][0])
                wait_for = min(0.5, max(0.005, horizon - time.monotonic()))
                for conn in _conn_wait([w.conn for w in busy], timeout=wait_for):
                    worker = next((w for w in workers if w.conn is conn), None)
                    if worker is None or worker.task is None:
                        continue  # worker was replaced or already handled
                    try:
                        msg = worker.conn.recv()
                    except (EOFError, OSError):
                        task = worker.task
                        code = worker.proc.exitcode
                        self._replace(workers, worker, ctx)
                        attempt_failed(
                            task,
                            WorkerCrashed(
                                f"worker pid {worker.proc.pid} died "
                                f"(exit code {code}) during {task.key}"
                            ),
                        )
                        continue
                    except Exception as exc:
                        # A message arrived but cannot be decoded (torn
                        # pipe write, scribbled memory): same containment
                        # as a crash — replace the worker, retry the task.
                        task = worker.task
                        self._replace(workers, worker, ctx)
                        attempt_failed(
                            task,
                            WorkerCrashed(
                                f"worker pid {worker.proc.pid} shipped an "
                                f"undecodable message during {task.key} "
                                f"({type(exc).__name__}: torn write?)"
                            ),
                        )
                        continue
                    handle_result(worker, msg)
                now = time.monotonic()
                for worker in list(workers):
                    if worker.task is not None and now >= worker.deadline:
                        task = worker.task
                        budget = worker.deadline - task.started_at
                        self._replace(workers, worker, ctx)
                        attempt_failed(
                            task,
                            RunTimeout(
                                f"run {task.key} exceeded {budget:.1f}s; "
                                "worker killed"
                            ),
                        )
        finally:
            stack.close()

    def _dispatch(self, worker: _Worker, task: _Task, journal) -> bool:
        cfg = self.config
        task.attempts += 1
        task.total_attempts += 1
        timeout = cfg.timeout * (
            cfg.fallback_timeout_factor if task.simulator == "reference" else 1.0
        )
        injected = None
        if cfg.faults is not None:
            injected = cfg.faults.decide(task.key, task.total_attempts)
        fault = None
        if injected == "timeout":
            fault = ("timeout", timeout * 3 + 1.0)
        elif injected == "layout":
            fault = (
                "layout",
                choose_corruption(cfg.faults.seed, task.key, task.total_attempts),
            )
        elif injected == "slow":
            fault = ("slow", cfg.faults.slow_s)
        elif injected is not None:
            fault = (injected, None)
        task.started_at = time.monotonic()
        worker.task = task
        worker.deadline = task.started_at + timeout
        collect = obs.is_enabled()
        if collect:
            obs.counter_add(
                "repro_engine_attempts_total", 1,
                "task attempts dispatched to workers",
                simulator=task.simulator,
            )
            obs.observe(
                "repro_engine_queue_wait_seconds",
                max(0.0, task.started_at - task.enqueued_at),
                "time tasks sat ready before a worker picked them up",
            )
        journal.emit(
            "start", run=task.key, attempt=task.total_attempts,
            simulator=task.simulator, worker=worker.proc.pid,
            **({"injected": injected} if injected else {}),
        )
        guard_record = cfg.guard.to_record() if cfg.guard else None
        try:
            worker.conn.send(
                (
                    "task", task.index, task.request, task.simulator,
                    fault, collect, guard_record, cfg.jit, cfg.tier,
                )
            )
        except (BrokenPipeError, OSError):  # pragma: no cover - instant death
            worker.task = None
            worker.deadline = float("inf")
            return False
        return True

    @staticmethod
    def _journal_guard(journal, key: str, guard_record) -> None:
        """Persist a worker's guard verdict so it survives a crash.

        Violations and rollbacks become their own journal events (the
        worker's in-process guard sinks die with the worker, so the
        parent re-emits from the verdict record it shipped back).
        """
        if not guard_record:
            return
        for violation in guard_record.get("violations", ()):
            journal.emit("guard_violation", run=key, **violation)
            obs.counter_add(
                "repro_guard_violations_total", 1,
                "guard violations detected, by kind and checker",
                kind=violation.get("kind", "?"),
                checker=violation.get("checker", "?"),
            )
        if guard_record.get("status") == "rolled_back":
            journal.emit(
                "guard_rollback", run=key,
                baseline_miss_pct=guard_record.get("baseline_miss_pct"),
                padded_miss_pct=guard_record.get("padded_miss_pct"),
            )
            obs.counter_add(
                "repro_guard_rollbacks_total", 1,
                "transformed runs rolled back to the original layout",
            )

    def _replace(self, workers: List[_Worker], dead: _Worker, ctx) -> None:
        dead.kill()
        workers[workers.index(dead)] = _Worker(ctx, slot=dead.slot)

    def _backoff(self, task: _Task) -> float:
        cfg = self.config
        if cfg.backoff_base <= 0:
            return 0.0
        raw = min(cfg.backoff_cap, cfg.backoff_base * 2 ** (task.attempts - 1))
        jitter = 0.5 + unit_interval(cfg.seed, task.key, task.total_attempts)
        return raw * jitter


def validate_payload(payload, digest) -> Optional[CacheStats]:
    """Rebuild stats from a worker payload iff it matches its checksum.

    Shared by the engine and the campaign coordinator: a worker whose
    memory was scribbled on (or an injected ``corrupt`` fault) produces a
    payload that no longer matches the digest computed before shipping,
    and must be retried, never stored.
    """
    if not isinstance(payload, dict) or checksum(payload) != digest:
        return None
    try:
        stats = CacheStats(**payload)
    except TypeError:
        return None
    if stats.accesses < 0 or stats.misses < 0 or stats.misses > stats.accesses:
        return None
    return stats


@contextlib.contextmanager
def _owned_workers(ctx, count: int):
    """Per-sweep workers: stop idle ones, kill mid-task ones, on exit."""
    workers = [_Worker(ctx, slot=i) for i in range(count)]
    try:
        yield workers
    finally:
        for worker in workers:
            if worker.task is None:
                worker.stop()
            else:  # pragma: no cover - aborted sweep
                worker.kill()


def _mp_context():
    """Fork where available (cheap workers); spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context("spawn")
