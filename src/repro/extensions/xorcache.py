"""XOR-based cache placement (González, Valero, Topham & Parcerisa,
ICS 1997 — the paper's reference [11]).

A conventional cache indexes sets with the low line-address bits, so
addresses a multiple of the cache size apart always collide — the very
conflicts padding removes in software.  An XOR-placement cache instead
hashes the index with higher address bits::

    set = (low_bits XOR next_bits) mod num_sets

which scatters regular strides across sets.  This module provides drop-in
variants of both fast engines with that placement, so the ablation
benchmarks can ask the related-work question directly: *how much of
padding's benefit would hardware hashing buy without recompiling?*
"""

from __future__ import annotations

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.fastsim import FastDirectMapped, FastSetAssociative


def _xor_fold(lines: np.ndarray, set_bits: int, set_mask: int) -> np.ndarray:
    """Fold the two low line-address bit groups with XOR."""
    return (lines ^ (lines >> set_bits)) & set_mask


class XorDirectMapped(FastDirectMapped):
    """Direct-mapped cache with XOR-folded set indexing."""

    engine_label = "xor_direct"

    def __init__(self, config: CacheConfig):
        super().__init__(config)
        self._set_bits = config.num_sets.bit_length() - 1

    def _set_indices(self, lines: np.ndarray) -> np.ndarray:
        return _xor_fold(lines, self._set_bits, self._set_mask)


class XorSetAssociative(FastSetAssociative):
    """k-way LRU cache with XOR-folded set indexing."""

    engine_label = "xor_assoc"

    def __init__(self, config: CacheConfig):
        super().__init__(config)
        self._set_bits = max(1, config.num_sets.bit_length() - 1)

    def _set_indices(self, lines: np.ndarray) -> np.ndarray:
        return _xor_fold(lines, self._set_bits, self._set_mask)


def make_xor_simulator(config: CacheConfig):
    """The fastest XOR-placement engine for a configuration."""
    if config.is_direct_mapped:
        return XorDirectMapped(config)
    return XorSetAssociative(config)
