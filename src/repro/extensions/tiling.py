"""Euclidean tile-size selection (Coleman & McKinley, PLDI 1995).

The paper's LINPAD2 heuristic is a generalization of this algorithm
(Section 2.3.2 credits it directly): both walk the Euclidean remainder
sequence of (cache size, column size).  Where LINPAD2 *changes the data*
so nearby columns stop colliding, tile-size selection *changes the loop
structure* so the reused working set never self-interferes.

Candidate tile heights are the Euclidean remainders of ``(Cs, Col)`` —
each remainder is the smallest circular gap achievable between the start
addresses of some number of consecutive columns, so a tile no taller than
a remainder packs that many columns without overlap.  For each candidate
height this module computes the exact self-interference-free width by
direct construction (placing column offsets and checking circular gaps),
then picks the candidate maximizing cache utilization.

:func:`tiled_matmul` generates a tiled matrix multiply in the project DSL
so the choice can be validated by simulation (see the tiling ablation
benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.config import CacheConfig
from repro.errors import ConfigError
from repro.frontend import parse_program
from repro.ir.program import Program


@dataclass(frozen=True)
class TileChoice:
    """One candidate (or selected) tile."""

    height: int  # elements along the column (fastest) dimension
    width: int  # columns
    footprint_bytes: int
    utilization: float  # footprint / cache size

    def describe(self) -> str:
        """Short human-readable summary."""
        return (
            f"{self.height} x {self.width} "
            f"({self.footprint_bytes}B, {100 * self.utilization:.0f}% of cache)"
        )


def _max_width(cache_size: int, column_bytes: int, height_bytes: int) -> int:
    """Largest w such that w consecutive columns' tile segments do not
    overlap on the cache (exact, by construction)."""
    if height_bytes > cache_size:
        return 0
    offsets: List[int] = []
    width = 0
    offset = 0
    while width < cache_size:  # cannot exceed Cs distinct columns
        # Check the new column's segment [offset, offset+height) against
        # all placed segments, circularly.
        for placed in offsets:
            gap = (offset - placed) % cache_size
            if gap < height_bytes or cache_size - gap < height_bytes:
                if gap != 0 or width == 0:
                    return width
                return width
        offsets.append(offset)
        width += 1
        offset = (offset + column_bytes) % cache_size
        if (width + 1) * height_bytes > cache_size:
            # Capacity bound: no more segments can fit regardless.
            return width
    return width


def tile_candidates(
    cache: CacheConfig, column_bytes: int, element_size: int
) -> List[TileChoice]:
    """Candidate tiles from the Euclidean remainder sequence."""
    if column_bytes <= 0 or element_size <= 0:
        raise ConfigError("column and element sizes must be positive")
    cs = cache.size_bytes
    candidates: List[TileChoice] = []
    seen_heights = set()
    r = column_bytes % cs
    if r == 0:
        r = cs  # degenerate: columns exactly overlap; only height-1 tiles
    remainders = [cs, r]
    while remainders[-1] > 0:
        remainders.append(remainders[-2] % remainders[-1])
    for rem in remainders[1:-1]:
        height_elems = max(1, rem // element_size)
        if height_elems in seen_heights:
            continue
        seen_heights.add(height_elems)
        height_bytes = height_elems * element_size
        width = _max_width(cs, column_bytes, height_bytes)
        if width == 0:
            continue
        footprint = height_bytes * width
        candidates.append(
            TileChoice(
                height=height_elems,
                width=width,
                footprint_bytes=footprint,
                utilization=footprint / cs,
            )
        )
    return candidates


def select_tile(
    cache: CacheConfig,
    column_elems: int,
    element_size: int,
    max_height: int = 0,
    max_width: int = 0,
) -> TileChoice:
    """The candidate with the best cache utilization (ties: taller first).

    ``max_height``/``max_width`` clip candidates to the loop bounds
    (0 = unbounded).
    """
    candidates = tile_candidates(cache, column_elems * element_size, element_size)
    best = None
    for cand in candidates:
        height = min(cand.height, max_height) if max_height else cand.height
        width = min(cand.width, max_width) if max_width else cand.width
        footprint = height * element_size * width
        clipped = TileChoice(height, width, footprint, footprint / cache.size_bytes)
        if best is None or (clipped.utilization, clipped.height) > (
            best.utilization,
            best.height,
        ):
            best = clipped
    if best is None:
        # Pathological column (multiple of the cache size): single column.
        height = min(max_height or 1, cache.size_bytes // element_size)
        footprint = height * element_size
        best = TileChoice(height, 1, footprint, footprint / cache.size_bytes)
    return best


def tiled_matmul(n: int, tile_height: int, tile_width: int) -> Program:
    """A tiled jki matrix multiply: the A(i,k) tile is the resident set.

    Requires the tile sizes to divide ``n`` (the DSL has no ``min`` for
    ragged edge tiles).
    """
    if n % tile_height or n % tile_width:
        raise ConfigError(
            f"tile {tile_height}x{tile_width} must divide the matrix size {n}"
        )
    src = f"""
program tiled_matmul
  param N = {n}
  param TH = {tile_height}
  param TW = {tile_width}
  real*8 A(N,N), B(N,N), C(N,N)
  do kk = 1, N, TW
    do ii = 1, N, TH
      do j = 1, N
        do k = kk, kk + TW - 1
          do i = ii, ii + TH - 1
            C(i,j) = C(i,j) + A(i,k) * B(k,j)
          end do
        end do
      end do
    end do
  end do
end
"""
    return parse_program(src, suite="extension", description="Tiled Matrix Multiply")
