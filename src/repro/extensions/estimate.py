"""Static severe-conflict miss estimation.

The paper positions itself against full cache-miss-equation solvers
(Ghosh et al.) by using "a simplified version of cache miss equations to
detect when large numbers of conflict misses will occur".  This module
packages that detection as an *estimator*: without simulating, predict
which fraction of a program's references suffers severe conflicts under a
layout.

Model: within each loop nest, a reference loses its reuse when it
severely conflicts with any other uniformly generated reference of the
nest (the conflicting pair evicts it between consecutive touches), so it
misses on every iteration; otherwise it pays only its streaming rate
``element_size / line_size`` (unit-stride spatial reuse) or 1.0 for
non-affine (gather) references.  Nest weights are static trip-count
products.  The estimate is deliberately simple — its job, like the
compiler's, is to *rank* layouts and flag severe trouble, and the tests
validate exactly that against simulation.

``estimate_conflicts(..., exact=True)`` consults the analytic miss
predictor (:mod:`repro.analysis.predict`) first: when the program is
analyzable the returned estimate carries the predictor's *exact* counts
(``exact=True``, ``error_bound_pct == 0``); otherwise the heuristic
model answers and ``bailout`` records why exactness was unavailable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.analysis.conflict import severe_conflict
from repro.analysis.linearize import linearized_distance
from repro.analysis.uniform import uniform_groups
from repro.cache.config import CacheConfig
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.layout.layout import MemoryLayout


@dataclass(frozen=True)
class ConflictEstimate:
    """Static prediction for one program under one layout."""

    miss_rate_pct: float
    conflicting_refs: int
    total_refs: int
    per_nest: Dict[int, float]
    #: the same weighted rate with every conflict ignored — the floor the
    #: program would pay from streaming (spatial) misses alone.
    streaming_floor_pct: float = 0.0
    #: True when the analytic predictor answered: the rate is the exact
    #: simulated miss rate, not a model output.
    exact: bool = False
    #: the predictor's first bailout reason when ``exact`` was requested
    #: but unavailable (e.g. ``"indirect"``, ``"symbolic_bounds"``).
    bailout: Optional[str] = None

    @property
    def severe(self) -> bool:
        """True when any reference is predicted to thrash."""
        return self.conflicting_refs > 0

    @property
    def error_bound_pct(self) -> float:
        """The conflict-attributable share of the estimate.

        Everything between the streaming floor and the estimate rides on
        the severe-conflict model, so this band is how far the estimate
        can be off if the model mis-classifies every pair — the honest
        uncertainty attached to a degraded (non-simulated) answer.
        Exact (analytic) answers have no model uncertainty: 0.
        """
        if self.exact:
            return 0.0
        return max(0.0, self.miss_rate_pct - self.streaming_floor_pct)


def _approx_trips(loop: Loop, outer_mid: Dict[str, int]) -> int:
    """Static trip count; outer-variable bounds evaluated at midpoints."""
    lo = loop.lower.substitute(outer_mid)
    hi = loop.upper.substitute(outer_mid)
    if not (lo.is_constant and hi.is_constant):
        return 1
    if loop.step > 0:
        return max(0, (hi.const - lo.const) // loop.step + 1)
    return max(0, (lo.const - hi.const) // (-loop.step) + 1)


def _nest_weight(loop: Loop, outer_mid: Dict[str, int]) -> int:
    trips = _approx_trips(loop, outer_mid)
    mid = dict(outer_mid)
    lo = loop.lower.substitute(outer_mid)
    hi = loop.upper.substitute(outer_mid)
    if lo.is_constant and hi.is_constant:
        mid[loop.var] = (lo.const + hi.const) // 2
    else:
        mid[loop.var] = 1
    inner = [node for node in loop.body if isinstance(node, Loop)]
    if not inner:
        stmt_refs = sum(
            len(node.refs) for node in loop.body if not isinstance(node, Loop)
        )
        return trips * max(1, stmt_refs)
    return trips * sum(_nest_weight(n, mid) for n in inner)


#: replay budget for the ``exact=True`` path: small enough that a
#: browned-out service never burns simulation-scale time in the
#: estimator, large enough to cover the folded replays of real kernels.
PREDICT_BUDGET = 1 << 20


def _exact_estimate(prediction) -> ConflictEstimate:
    """A :class:`ConflictEstimate` carrying the predictor's exact counts."""
    per_nest: Dict[int, Dict[str, int]] = {}
    conflicting = 0
    for ref in prediction.per_ref:
        if ref.conflict_misses > 0:
            conflicting += 1
        row = per_nest.setdefault(
            ref.unit_index, {"accesses": 0, "misses": 0}
        )
        row["accesses"] += ref.accesses
        row["misses"] += ref.misses
    stats = prediction.stats
    rate = stats.miss_rate_pct
    return ConflictEstimate(
        miss_rate_pct=rate,
        conflicting_refs=conflicting,
        total_refs=len(prediction.per_ref),
        per_nest={
            unit: (100.0 * row["misses"] / row["accesses"]
                   if row["accesses"] else 0.0)
            for unit, row in per_nest.items()
        },
        streaming_floor_pct=rate,  # exact: no conflict-model band
        exact=True,
    )


def estimate_conflicts(
    prog: Program,
    layout: MemoryLayout,
    cache: CacheConfig,
    exact: bool = False,
    budget: Optional[int] = None,
) -> ConflictEstimate:
    """Predict the severe-conflict miss rate of a program under a layout.

    With ``exact=True`` the analytic miss predictor is consulted first
    (bounded by ``budget``, default :data:`PREDICT_BUDGET` replayed
    accesses): analyzable programs get their *exact* miss rate
    (``exact=True`` on the result, ``error_bound_pct == 0``); on a
    bailout the heuristic model answers as usual with the first bailout
    reason recorded on ``bailout``.
    """
    if exact:
        from repro.analysis.predict import predict_misses

        outcome = predict_misses(
            prog, layout, cache,
            budget=PREDICT_BUDGET if budget is None else budget,
        )
        if outcome.analyzable:
            return _exact_estimate(outcome.prediction)
        modeled = estimate_conflicts(prog, layout, cache)
        return dataclasses.replace(modeled, bailout=outcome.reason)
    total_weight = 0.0
    miss_weight = 0.0
    floor_weight = 0.0
    conflicting_refs = 0
    total_refs = 0
    per_nest: Dict[int, float] = {}

    for nest_index, nest in enumerate(prog.loop_nests()):
        refs = list(nest.refs())
        if not refs:
            continue
        # Which refs are in a severely conflicting pair?
        doomed: Set[int] = set()
        groups = uniform_groups(prog, nest)
        ref_ids = {id(r): i for i, r in enumerate(refs)}
        for group in groups:
            members = group.refs
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    (na, ra), (nb, rb) = members[i], members[j]
                    delta = linearized_distance(
                        ra, prog.array(na), rb, prog.array(nb),
                        layout.dim_sizes(na), layout.dim_sizes(nb),
                        layout.base(na), layout.base(nb),
                    )
                    if not delta.is_constant:
                        continue
                    if severe_conflict(delta.const, cache.size_bytes, cache.line_bytes):
                        doomed.add(ref_ids.get(id(ra), -1))
                        doomed.add(ref_ids.get(id(rb), -1))
        doomed.discard(-1)

        nest_weight = _nest_weight(nest, {})
        nest_miss = 0.0
        nest_floor = 0.0
        for i, ref in enumerate(refs):
            total_refs += 1
            if ref.is_affine:
                decl = prog.array(ref.array)
                stream = min(1.0, decl.element_size / cache.line_bytes)
            else:
                stream = 1.0
            nest_floor += stream
            if i in doomed:
                conflicting_refs += 1
                nest_miss += 1.0
            else:
                nest_miss += stream
        per_ref_rate = nest_miss / len(refs)
        per_nest[nest_index] = 100.0 * per_ref_rate
        total_weight += nest_weight
        miss_weight += nest_weight * per_ref_rate
        floor_weight += nest_weight * (nest_floor / len(refs))

    rate = 100.0 * miss_weight / total_weight if total_weight else 0.0
    floor = 100.0 * floor_weight / total_weight if total_weight else 0.0
    return ConflictEstimate(
        miss_rate_pct=rate,
        conflicting_refs=conflicting_refs,
        total_refs=total_refs,
        per_nest=per_nest,
        streaming_floor_pct=floor,
    )
