"""Extensions beyond the paper's core contribution.

Three additions the paper points at without implementing:

* :mod:`repro.extensions.tiling` — Coleman & McKinley's Euclidean
  tile-size selection (reference [7]; the LINPAD2 algorithm is derived
  from it), plus a tiled-matmul program generator to evaluate it.
* :mod:`repro.extensions.xorcache` — XOR-based placement functions
  (González et al., reference [11]), the hardware alternative to padding
  the related-work section discusses; lets the ablation benches compare
  software padding against pseudo-random placement.
* :mod:`repro.extensions.estimate` — a static severe-conflict miss
  estimator, the "simplified version of cache miss equations" the paper
  describes using to detect when large numbers of conflict misses occur.
"""

from repro.extensions.estimate import ConflictEstimate, estimate_conflicts
from repro.extensions.tiling import TileChoice, select_tile, tile_candidates, tiled_matmul
from repro.extensions.xorcache import XorDirectMapped, XorSetAssociative, make_xor_simulator

__all__ = [
    "ConflictEstimate",
    "TileChoice",
    "XorDirectMapped",
    "XorSetAssociative",
    "estimate_conflicts",
    "make_xor_simulator",
    "select_tile",
    "tile_candidates",
    "tiled_matmul",
]
