"""Guard orchestration: validate a transformed layout before committing.

:func:`check_transform` runs the three checkers in escalating cost
order — layout invariants (pure bookkeeping), the semantic sanitizer
(two trace interpretations, no simulation), then the miss-rate
regression guard (two cache simulations) — and decides the outcome:

* clean → the padded stats are committed (``passed``);
* any invariant or sanitizer violation → in ``strict`` mode a
  :class:`~repro.errors.GuardViolationError` is raised *before the
  transformed layout reaches a simulator*; in ``warn`` mode the
  violations are journaled and the run auto-rolls back to the original
  layout's stats (``rolled_back``) — a corrupted layout never produces
  committed numbers in either mode;
* a miss-rate regression past epsilon → auto-rollback to the original
  layout's stats (``rolled_back``) in both modes: a pessimizing pad is
  a guard *save*, not a run failure.

:func:`check_padding` is the cheaper driver-level hook: budget
degradation plus the invariant checker, attached to the
:class:`~repro.padding.common.PaddingResult` as it leaves a driver.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.cache.stats import CacheStats
from repro.errors import GuardViolationError
from repro.guard import runtime as rt
from repro.guard.config import (
    STATUS_PASSED,
    STATUS_ROLLED_BACK,
    DroppedPad,
    GuardConfig,
    GuardReport,
    GuardViolation,
)
from repro.guard.invariants import check_layout, enforce_budget
from repro.guard.regression import regression_violation
from repro.guard.sanitizer import sanitize
from repro.ir.program import Program
from repro.layout.layout import MemoryLayout, original_layout
from repro.obs import runtime as obs

SimulateFn = Callable[[Program, MemoryLayout], CacheStats]


def _raise_strict(violations: Sequence[GuardViolation]) -> None:
    raise GuardViolationError(
        "guard (strict): "
        + "; ".join(v.describe() for v in violations[:5])
        + (f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""),
        violations=violations,
    )


def check_padding(
    prog: Program,
    layout: MemoryLayout,
    config: GuardConfig,
    run_key: Optional[str] = None,
) -> GuardReport:
    """Driver-level guard: budget degradation + layout invariants.

    Mutates ``layout`` when budget degradation drops pads.  Raises
    :class:`GuardViolationError` in strict mode on any violation.
    """
    with obs.span("guard.padding"):
        dropped = []
        if config.budget_bytes is not None:
            dropped = enforce_budget(prog, layout, config.budget_bytes)
            for drop in dropped:
                rt.emit_drop(drop, run_key)
        rt.emit_check("invariants")
        violations = check_layout(prog, layout, budget_bytes=config.budget_bytes)
        for violation in violations:
            rt.emit_violation(violation, run_key)
        if violations and config.strict:
            _raise_strict(violations)
        report = GuardReport(
            status="warned" if violations else STATUS_PASSED,
            violations=violations,
            dropped=dropped,
        )
        return report


def check_transform(
    prog: Program,
    layout: MemoryLayout,
    config: GuardConfig,
    simulate_fn: SimulateFn,
    baseline_layout: Optional[MemoryLayout] = None,
    baseline_stats: Optional[CacheStats] = None,
    seed: int = 12345,
    run_key: Optional[str] = None,
    dropped: Sequence[DroppedPad] = (),
    reference_layout: Optional[MemoryLayout] = None,
) -> Tuple[GuardReport, CacheStats]:
    """Full guard for one run; returns the verdict and the stats to commit.

    ``simulate_fn(prog, layout)`` produces cache stats for one layout;
    ``baseline_stats`` short-circuits the baseline simulation when the
    caller already has it (the runner memoizes the original-heuristic
    run).  ``reference_layout`` is the layout the transformation
    committed (see :func:`~repro.guard.sanitizer.sanitize`).  In strict
    mode invariant/sanitizer violations raise before ``simulate_fn``
    ever sees the transformed layout.
    """
    with obs.span("guard.check", seed=seed):
        rt.emit_check("invariants")
        violations = list(
            check_layout(prog, layout, budget_bytes=config.budget_bytes)
        )
        base_layout = baseline_layout or original_layout(prog)
        if not violations:
            # Only a structurally sound layout can be interpreted; an
            # unsound one is already condemned and tracing it may crash.
            rt.emit_check("sanitizer")
            try:
                violations.extend(
                    sanitize(
                        prog, layout, base_layout,
                        seed=seed, limit=config.sanitize_limit,
                        reference_layout=reference_layout,
                    )
                )
            except Exception as exc:
                violations.append(
                    GuardViolation(
                        "out_of_bounds", "sanitizer",
                        f"trace interpretation failed: "
                        f"{type(exc).__name__}: {exc}",
                    )
                )
        for violation in violations:
            rt.emit_violation(violation, run_key)
        if violations:
            if config.strict:
                _raise_strict(violations)
            # warn mode: the transformed layout is unsound — roll back to
            # the original layout rather than committing tainted numbers.
            base_stats = (
                baseline_stats
                if baseline_stats is not None
                else simulate_fn(prog, base_layout)
            )
            rt.emit_rollback(
                base_stats.miss_rate_pct, float("nan"), run_key
            )
            return (
                GuardReport(
                    status=STATUS_ROLLED_BACK,
                    violations=violations,
                    dropped=list(dropped),
                    baseline_miss_pct=base_stats.miss_rate_pct,
                ),
                base_stats,
            )

        rt.emit_check("regression")
        base_stats = (
            baseline_stats
            if baseline_stats is not None
            else simulate_fn(prog, base_layout)
        )
        padded_stats = simulate_fn(prog, layout)
        regression = regression_violation(
            base_stats, padded_stats, config.epsilon_pct
        )
        if regression is not None:
            rt.emit_violation(regression, run_key)
            rt.emit_rollback(
                base_stats.miss_rate_pct, padded_stats.miss_rate_pct, run_key
            )
            return (
                GuardReport(
                    status=STATUS_ROLLED_BACK,
                    violations=[regression],
                    dropped=list(dropped),
                    baseline_miss_pct=base_stats.miss_rate_pct,
                    padded_miss_pct=padded_stats.miss_rate_pct,
                ),
                base_stats,
            )
        return (
            GuardReport(
                status=STATUS_PASSED,
                violations=[],
                dropped=list(dropped),
                baseline_miss_pct=base_stats.miss_rate_pct,
                padded_miss_pct=padded_stats.miss_rate_pct,
            ),
            padded_stats,
        )
