"""Semantic sanitizer: a transformed layout must touch the same cells.

The paper's transformations change *addresses*, never *meaning*: a
padded program must read and write exactly the logical array cells the
original program does, in the same order, with the same read/write
pattern.  The sanitizer checks that directly:

1. trace the program under the baseline layout and under the transformed
   layout (same :class:`~repro.trace.env.DataEnv` seed, so indirect
   subscripts gather identical index data);
2. invert every traced byte address back to a logical cell — which
   variable it falls in, and which declared-coordinate element of that
   variable — using each layout's own bases and padded strides;
3. compare the two logical-cell sequences element-wise.

Addresses are allowed to differ arbitrarily; a single differing cell,
write flag, or trace length is a violation.  Inversion also exposes two
corruption modes a plain diff cannot: addresses that land *outside*
every placed variable (``out_of_bounds``) and addresses that land inside
a variable's padding (``pad_touched``).

A layout corrupted *consistently* (e.g. two same-size arrays with their
bases swapped) is internally coherent — inverting its own trace with its
own bases reconstructs the intended cells.  The ``reference_layout``
parameter closes that hole: the transformed trace is inverted with the
layout the transformation *committed* (where the data actually lives),
so any post-commit drift of the address metadata shows up as accesses to
the wrong variable or the wrong cell.

Cost is bounded by ``limit`` accesses per layout; traces longer than the
limit are compared on their prefix (the compared prefix is reported).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.guard.config import GuardViolation
from repro.ir.program import Program
from repro.layout.layout import MemoryLayout
from repro.trace.env import DataEnv
from repro.trace.interpreter import TraceInterpreter


class _Inverter:
    """Vectorized byte-address -> (variable, canonical cell) mapping."""

    def __init__(self, prog: Program, layout: MemoryLayout):
        slots = []
        for index, decl in enumerate(prog.decls):
            if not layout.has_base(decl.name):
                continue
            base = layout.base(decl.name)
            size = layout.size_bytes(decl.name)
            if hasattr(decl, "dims"):  # array
                padded = layout.dim_sizes(decl.name)
                declared = decl.dim_sizes
                element = decl.element_size
            else:  # scalar: one cell
                padded = declared = (1,)
                element = size or 1
            slots.append((base, base + size, index, element, padded, declared))
        slots.sort()
        self._bases = np.array([s[0] for s in slots], dtype=np.int64)
        self._ends = np.array([s[1] for s in slots], dtype=np.int64)
        self._slots = slots

    def invert(
        self, addrs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
        """(variable ids, canonical cells, #out-of-bounds, #pad-touched).

        Out-of-bounds addresses get id/cell -1; pad-touched cells get
        cell -2 so any mismatch against a clean stream is detected.
        """
        pos = np.searchsorted(self._bases, addrs, side="right") - 1
        clipped = np.clip(pos, 0, len(self._bases) - 1)
        inside = (pos >= 0) & (addrs < self._ends[clipped])
        ids = np.full(len(addrs), -1, dtype=np.int64)
        cells = np.full(len(addrs), -1, dtype=np.int64)
        pad_touched = 0
        for slot_index, (base, _end, decl_id, element, padded, declared) in (
            enumerate(self._slots)
        ):
            mask = inside & (clipped == slot_index)
            if not mask.any():
                continue
            ids[mask] = decl_id
            flat = (addrs[mask] - base) // element
            canon = np.zeros(len(flat), dtype=np.int64)
            in_pad = np.zeros(len(flat), dtype=bool)
            declared_stride = 1
            for pad_size, decl_size in zip(padded, declared):
                coord = flat % pad_size
                flat = flat // pad_size
                in_pad |= coord >= decl_size
                canon += coord * declared_stride
                declared_stride *= decl_size
            canon[in_pad] = -2
            pad_touched += int(in_pad.sum())
            cells[mask] = canon
        return ids, cells, int((~inside).sum()), pad_touched


def cell_stream(
    prog: Program,
    layout: MemoryLayout,
    seed: int,
    limit: int,
    invert_layout: Optional[MemoryLayout] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int, bool]:
    """Logical-cell view of a program's trace under one layout.

    The trace is generated under ``layout`` and inverted with
    ``invert_layout`` (default: ``layout`` itself).  Returns ``(ids,
    cells, writes, out_of_bounds, pad_touched, truncated)`` with at most
    ``limit`` entries.
    """
    inverter = _Inverter(prog, invert_layout or layout)
    ids_parts: List[np.ndarray] = []
    cell_parts: List[np.ndarray] = []
    write_parts: List[np.ndarray] = []
    oob = touched = 0
    total = 0
    truncated = False
    interp = TraceInterpreter(prog, layout, DataEnv(seed=seed))
    for addrs, writes in interp.trace():
        if total + len(addrs) > limit:
            addrs = addrs[: limit - total]
            writes = writes[: limit - total]
            truncated = True
        ids, cells, chunk_oob, chunk_touched = inverter.invert(
            np.asarray(addrs, dtype=np.int64)
        )
        ids_parts.append(ids)
        cell_parts.append(cells)
        write_parts.append(np.asarray(writes, dtype=bool))
        oob += chunk_oob
        touched += chunk_touched
        total += len(addrs)
        if truncated:
            break
    empty = np.empty(0, dtype=np.int64)
    return (
        np.concatenate(ids_parts) if ids_parts else empty,
        np.concatenate(cell_parts) if cell_parts else empty,
        np.concatenate(write_parts) if write_parts else empty.astype(bool),
        oob,
        touched,
        truncated,
    )


def sanitize(
    prog: Program,
    layout: MemoryLayout,
    baseline_layout: MemoryLayout,
    seed: int = 12345,
    limit: int = 1 << 20,
    reference_layout: Optional[MemoryLayout] = None,
) -> List[GuardViolation]:
    """Violations between a transformed layout and the baseline (or []).

    ``reference_layout`` is the layout the transformation committed
    (where the data actually lives); when given, the transformed trace
    is inverted with it instead of with ``layout``, catching consistent
    base/stride drift that self-inversion cannot see.
    """
    violations: List[GuardViolation] = []

    def flag(kind: str, message: str, variable: Optional[str] = None) -> None:
        violations.append(
            GuardViolation(kind, "sanitizer", message, variable=variable)
        )

    base_ids, base_cells, base_writes, base_oob, base_touched, _ = cell_stream(
        prog, baseline_layout, seed, limit
    )
    ids, cells, writes, oob, touched, truncated = cell_stream(
        prog, layout, seed, limit, invert_layout=reference_layout
    )

    if oob:
        flag(
            "out_of_bounds",
            f"{oob} traced address(es) outside every placed variable",
        )
    if touched:
        flag("pad_touched", f"{touched} traced address(es) landed in padding")
    if base_oob or base_touched:  # baseline itself unsound: report loudly
        flag(
            "out_of_bounds",
            f"baseline layout unsound: {base_oob} out-of-bounds, "
            f"{base_touched} in-padding accesses",
        )

    if len(ids) != len(base_ids):
        flag(
            "length_mismatch",
            f"transformed trace has {len(ids)} accesses, "
            f"baseline has {len(base_ids)}",
        )
        return violations

    if not np.array_equal(writes, base_writes):
        first = int(np.nonzero(writes != base_writes)[0][0])
        flag(
            "write_mismatch",
            f"read/write pattern diverges at access {first}",
        )

    mismatch = (ids != base_ids) | (cells != base_cells)
    if mismatch.any():
        first = int(np.nonzero(mismatch)[0][0])
        decls = list(prog.decls)

        def describe(i, c):
            name = decls[i].name if 0 <= i < len(decls) else "?"
            return f"{name}[{c}]"

        flag(
            "cell_mismatch",
            f"{int(mismatch.sum())} of {len(ids)}"
            f"{' (prefix)' if truncated else ''} accesses touch different "
            f"cells; first at access {first}: baseline "
            f"{describe(int(base_ids[first]), int(base_cells[first]))} vs "
            f"transformed {describe(int(ids[first]), int(cells[first]))}",
        )
    return violations
