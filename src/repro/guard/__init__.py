"""repro.guard — transformation guardrails (validate before commit).

The paper's padding transformations promise two properties: they change
only *addresses*, never program meaning, and they never make conflict
misses meaningfully worse.  This subsystem checks both at runtime and
sits between the padding drivers and everything downstream:

* :func:`check_layout` / :func:`enforce_budget` — layout invariants and
  memory-budget degradation (:mod:`repro.guard.invariants`);
* :func:`sanitize` — the semantic sanitizer comparing logical-cell
  sequences under the original and transformed layouts
  (:mod:`repro.guard.sanitizer`);
* :func:`regression_violation` — the miss-rate regression guard
  (:mod:`repro.guard.regression`);
* :func:`check_padding` / :func:`check_transform` — orchestration with
  strict-mode enforcement and warn-mode auto-rollback
  (:mod:`repro.guard.core`);
* :mod:`repro.guard.runtime` — process-wide activation (the ``--guard``
  CLI flag) and violation fan-out to metrics, journal sinks and logs.
"""

from repro.guard.config import (
    GUARD_MODES,
    STATUS_PASSED,
    STATUS_ROLLED_BACK,
    STATUS_WARNED,
    VIOLATION_KINDS,
    DroppedPad,
    GuardConfig,
    GuardReport,
    GuardViolation,
)
from repro.guard.core import check_padding, check_transform
from repro.guard.invariants import check_layout, enforce_budget, pad_overhead_bytes
from repro.guard.regression import regression_violation
from repro.guard.sanitizer import cell_stream, sanitize

__all__ = [
    "GUARD_MODES",
    "STATUS_PASSED",
    "STATUS_ROLLED_BACK",
    "STATUS_WARNED",
    "VIOLATION_KINDS",
    "DroppedPad",
    "GuardConfig",
    "GuardReport",
    "GuardViolation",
    "cell_stream",
    "check_layout",
    "check_padding",
    "check_transform",
    "enforce_budget",
    "pad_overhead_bytes",
    "regression_violation",
    "sanitize",
]
