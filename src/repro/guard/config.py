"""Guardrail configuration and verdict types.

A :class:`GuardConfig` selects the enforcement mode and the thresholds
the three checkers apply:

* ``mode`` — ``off`` (no checking at all), ``warn`` (violations are
  counted, journaled and logged but the run proceeds), ``strict``
  (any violation raises :class:`~repro.errors.GuardViolationError`
  before the transformed layout reaches a simulator);
* ``epsilon_pct`` — the miss-rate regression the rollback guard
  tolerates, in percentage points (padding is allowed to perturb the
  miss rate slightly; beyond epsilon the original layout is restored);
* ``budget_bytes`` — optional ceiling on total pad bytes; over-budget
  layouts are degraded by dropping the largest intra pads first;
* ``sanitize_limit`` — how many accesses the semantic sanitizer
  compares (bounds the cost of guarding very long traces).

:class:`GuardViolation` is one checker finding; :class:`GuardReport` is
the whole verdict for one guarded run, JSON-serializable so it can ride
an engine worker's result pipe and land in the run journal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigError

GUARD_MODES = ("off", "warn", "strict")

#: every violation kind a checker can report
VIOLATION_KINDS = (
    "unplaced",        # a declared variable never got a base address
    "negative_base",   # base address below zero
    "misaligned",      # base not a multiple of the element size
    "overlap",         # two placement units share bytes
    "shrunk",          # a dimension below its declared size (or <= 0)
    "shrink",          # a dimension below the committed (post-pad) size
    "rank",            # dim-size tuple inconsistent with the declaration
    "budget",          # total pad bytes over the configured ceiling
    "out_of_bounds",   # a traced address outside every placed variable
    "pad_touched",     # a traced address landed inside padding
    "cell_mismatch",   # transformed trace touches different logical cells
    "write_mismatch",  # read/write pattern changed under the transform
    "length_mismatch", # transformed trace has a different access count
    "regression",      # padded miss rate worse than baseline + epsilon
)

#: report statuses, in increasing order of severity
STATUS_PASSED = "passed"
STATUS_WARNED = "warned"
STATUS_ROLLED_BACK = "rolled_back"


@dataclass(frozen=True)
class GuardConfig:
    """Enforcement mode plus thresholds for the guard checkers."""

    mode: str = "warn"
    epsilon_pct: float = 0.5
    budget_bytes: Optional[int] = None
    sanitize_limit: int = 1 << 20

    def __post_init__(self):
        if self.mode not in GUARD_MODES:
            raise ConfigError(
                f"guard mode {self.mode!r} unknown; known: {GUARD_MODES}"
            )
        if self.epsilon_pct < 0:
            raise ConfigError(
                f"guard epsilon must be nonnegative, got {self.epsilon_pct}"
            )
        if self.budget_bytes is not None and self.budget_bytes <= 0:
            raise ConfigError(
                f"guard pad budget must be positive, got {self.budget_bytes}"
            )
        if self.sanitize_limit < 1:
            raise ConfigError(
                f"sanitize limit must be at least 1, got {self.sanitize_limit}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any checking happens at all."""
        return self.mode != "off"

    @property
    def strict(self) -> bool:
        return self.mode == "strict"

    def to_record(self) -> dict:
        """JSON-safe dict (engine worker messages, journal events)."""
        return {
            "mode": self.mode,
            "epsilon_pct": self.epsilon_pct,
            "budget_bytes": self.budget_bytes,
            "sanitize_limit": self.sanitize_limit,
        }

    @staticmethod
    def from_record(record: Optional[dict]) -> Optional["GuardConfig"]:
        """Invert :meth:`to_record`; ``None`` passes through."""
        if record is None:
            return None
        return GuardConfig(**record)


@dataclass(frozen=True)
class GuardViolation:
    """One finding from one guard checker."""

    kind: str       # one of VIOLATION_KINDS
    checker: str    # "invariants" | "sanitizer" | "regression"
    message: str
    variable: Optional[str] = None

    def __post_init__(self):
        if self.kind not in VIOLATION_KINDS:
            raise ConfigError(f"unknown guard violation kind {self.kind!r}")

    def describe(self) -> str:
        """One-line rendering for logs and CLI output."""
        where = f" [{self.variable}]" if self.variable else ""
        return f"{self.checker}/{self.kind}{where}: {self.message}"

    def to_record(self) -> dict:
        """JSON-safe dict (journal ``guard_violation`` event fields)."""
        return {
            "kind": self.kind,
            "checker": self.checker,
            "message": self.message,
            "variable": self.variable,
        }


@dataclass
class DroppedPad:
    """One intra pad removed by budget degradation."""

    array: str
    elements: Tuple[int, ...]  # per-dimension increments that were dropped
    bytes_freed: int

    def to_record(self) -> dict:
        """JSON-safe dict (rides :meth:`GuardReport.to_record`)."""
        return {
            "array": self.array,
            "elements": list(self.elements),
            "bytes_freed": self.bytes_freed,
        }


@dataclass
class GuardReport:
    """The verdict for one guarded transformation or run."""

    status: str = STATUS_PASSED
    violations: List[GuardViolation] = field(default_factory=list)
    dropped: List[DroppedPad] = field(default_factory=list)
    baseline_miss_pct: Optional[float] = None
    padded_miss_pct: Optional[float] = None

    @property
    def ok(self) -> bool:
        """True when nothing at all was flagged."""
        return not self.violations and not self.dropped

    @property
    def rolled_back(self) -> bool:
        return self.status == STATUS_ROLLED_BACK

    def describe(self) -> str:
        """One-line summary for CLI output."""
        if self.status == STATUS_ROLLED_BACK:
            if self.padded_miss_pct is None:
                # Invariant/sanitizer rollback: the corrupt layout was
                # never simulated, so there is no padded miss rate.
                return (
                    f"rolled back to original layout "
                    f"({len(self.violations)} violation(s): "
                    + "; ".join(v.describe() for v in self.violations[:3])
                    + ")"
                )
            return (
                f"rolled back (padded {self.padded_miss_pct:.2f}% vs "
                f"original {self.baseline_miss_pct:.2f}%)"
            )
        if self.violations:
            return (
                f"{self.status}: {len(self.violations)} violation(s): "
                + "; ".join(v.describe() for v in self.violations[:3])
            )
        if self.dropped:
            freed = sum(d.bytes_freed for d in self.dropped)
            return f"passed ({len(self.dropped)} pad(s) dropped, {freed}B freed)"
        return "passed"

    def to_record(self) -> dict:
        """JSON-safe dict that survives the worker pipe and the journal."""
        return {
            "status": self.status,
            "violations": [v.to_record() for v in self.violations],
            "dropped": [d.to_record() for d in self.dropped],
            "baseline_miss_pct": self.baseline_miss_pct,
            "padded_miss_pct": self.padded_miss_pct,
        }

    @staticmethod
    def from_record(record: Optional[dict]) -> Optional["GuardReport"]:
        """Invert :meth:`to_record`; tolerates missing optional fields."""
        if not isinstance(record, dict):
            return None
        return GuardReport(
            status=record.get("status", STATUS_PASSED),
            violations=[
                GuardViolation(**v) for v in record.get("violations", ())
            ],
            dropped=[
                DroppedPad(
                    array=d["array"],
                    elements=tuple(d.get("elements", ())),
                    bytes_freed=d.get("bytes_freed", 0),
                )
                for d in record.get("dropped", ())
            ],
            baseline_miss_pct=record.get("baseline_miss_pct"),
            padded_miss_pct=record.get("padded_miss_pct"),
        )
