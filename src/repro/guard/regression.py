"""Miss-rate regression guard.

The whole point of the paper's transformations is *fewer* conflict
misses; a pad that makes the miss rate worse is a pessimization the
pipeline must not silently commit.  The guard compares the padded
layout's simulated miss rate against the original layout's on the same
cache, and flags a regression when the padded rate exceeds the baseline
by more than the configured epsilon (percentage points).  The caller
responds by rolling back to the original layout and recording the
outcome as ``rolled_back`` — the run still succeeds, with honest stats.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.stats import CacheStats
from repro.guard.config import GuardViolation


def regression_violation(
    baseline: CacheStats,
    padded: CacheStats,
    epsilon_pct: float,
) -> Optional[GuardViolation]:
    """A ``regression`` violation when padding pessimized, else ``None``."""
    base_pct = baseline.miss_rate_pct
    padded_pct = padded.miss_rate_pct
    if padded_pct <= base_pct + epsilon_pct:
        return None
    return GuardViolation(
        kind="regression",
        checker="regression",
        message=(
            f"padded miss rate {padded_pct:.3f}% exceeds original "
            f"{base_pct:.3f}% by more than epsilon {epsilon_pct:.3f}"
        ),
    )
