"""Process-wide guard activation, mirroring :mod:`repro.obs.runtime`.

The padding drivers and the experiment runner consult one module-level
slot: when no config is active (the default, and the ``--guard off``
state) every guard entry point returns after a single test, so unguarded
pipelines pay nothing.  Activated, the drivers run the layout invariant
checker and budget degradation, and the runner adds the semantic
sanitizer and the miss-rate regression guard.

Violations fan out three ways:

* **counters** — ``repro_guard_*`` metrics through :mod:`repro.obs`;
* **sinks** — registered callables ``sink(event, fields)`` (the engine
  and ``run-all`` route these into the JSONL run journal as
  ``guard_violation`` / ``guard_drop`` / ``guard_rollback`` events);
* **logging** — a warning per violation, so even sink-less callers see
  what the guard caught.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from typing import Callable, Dict, Optional

from repro.guard.config import DroppedPad, GuardConfig, GuardViolation
from repro.obs import runtime as obs

log = logging.getLogger(__name__)

_active: Optional[GuardConfig] = None
_sinks: list = []

Sink = Callable[[str, Dict], None]


# -- lifecycle ---------------------------------------------------------------

def activate(config: GuardConfig) -> None:
    """Make ``config`` the process-wide guard policy."""
    global _active
    _active = config


def deactivate() -> None:
    """Return to the unguarded default."""
    global _active
    _active = None


def active_config() -> Optional[GuardConfig]:
    """The active config with checking enabled, else ``None``.

    ``mode="off"`` deliberately reads as inactive so callers need just
    one test on the hot path.
    """
    if _active is None or not _active.enabled:
        return None
    return _active


def is_active() -> bool:
    """Whether a guard policy is currently activated for this process."""
    return active_config() is not None


@contextmanager
def activated(config: Optional[GuardConfig]):
    """Scoped activation (engine workers guard one task at a time)."""
    global _active
    previous = _active
    _active = config
    try:
        yield
    finally:
        _active = previous


# -- sinks -------------------------------------------------------------------

def add_sink(sink: Sink) -> None:
    """Register a callable receiving every guard event."""
    _sinks.append(sink)


def remove_sink(sink: Sink) -> None:
    """Unregister a sink (no-op when absent)."""
    try:
        _sinks.remove(sink)
    except ValueError:
        pass


def clear_sinks() -> None:
    """Drop every sink (forked engine workers start clean)."""
    del _sinks[:]


def _fan_out(event: str, fields: Dict) -> None:
    for sink in list(_sinks):
        try:
            sink(event, fields)
        except Exception:  # a broken sink must never fail a run
            log.exception("guard sink failed for %s event", event)


# -- event emission ----------------------------------------------------------

def emit_check(checker: str) -> None:
    """Account one checker invocation."""
    obs.counter_add(
        "repro_guard_checks_total", 1,
        "guard checker invocations", checker=checker,
    )


def emit_violation(violation: GuardViolation, run: Optional[str] = None) -> None:
    """Account and broadcast one violation."""
    obs.counter_add(
        "repro_guard_violations_total", 1,
        "guard violations, by kind and checker",
        kind=violation.kind, checker=violation.checker,
    )
    fields = violation.to_record()
    if run:
        fields["run"] = run
    _fan_out("guard_violation", fields)
    log.warning("guard violation: %s", violation.describe())


def emit_drop(dropped: DroppedPad, run: Optional[str] = None) -> None:
    """Account and broadcast one budget-degradation pad drop."""
    obs.counter_add(
        "repro_guard_pads_dropped_total", 1,
        "intra pads dropped by budget degradation",
    )
    fields = dropped.to_record()
    if run:
        fields["run"] = run
    _fan_out("guard_drop", fields)
    log.warning(
        "guard budget: dropped intra pad on %s (%dB freed)",
        dropped.array, dropped.bytes_freed,
    )


def emit_rollback(
    baseline_pct: float, padded_pct: float, run: Optional[str] = None
) -> None:
    """Account and broadcast one regression-guard rollback."""
    obs.counter_add(
        "repro_guard_rollbacks_total", 1,
        "runs rolled back to the original layout",
    )
    fields = {"baseline_miss_pct": baseline_pct, "padded_miss_pct": padded_pct}
    if run:
        fields["run"] = run
    _fan_out("guard_rollback", fields)
    log.warning(
        "guard rollback: padded miss rate %.2f%% regressed past original %.2f%%",
        padded_pct, baseline_pct,
    )
