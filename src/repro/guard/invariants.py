"""Layout invariant checker and memory-budget degradation.

:func:`check_layout` re-derives, from first principles, every structural
property a padding transformation must preserve — it deliberately does
not trust :meth:`MemoryLayout.validate` (the guard exists to catch a
buggy or sabotaged layout, including one whose own bookkeeping lies):

* every declared variable is placed at a nonnegative, element-aligned
  base address;
* padded dimension-size tuples match the declared rank, keep every
  extent strictly positive (zero or negative extents are flagged
  explicitly), and never fall below the declared sizes — the declared
  sizes are a hard floor (violation kind ``shrunk``);
* the working sizes agree with the layout's committed-size witness
  (:meth:`MemoryLayout.committed_dim_sizes`) — a dimension shrunk from
  its committed padded size back toward the declared size leaves strides
  self-consistent and may cause no overlap (single-array programs in
  particular), so it is flagged in its own right as violation kind
  ``shrink`` rather than relying on ``overlap`` as a proxy;
* byte strides recomputed from the padded sizes agree with the strides
  the layout reports (a disagreement means the layout would address
  memory inconsistently);
* no two variables overlap;
* total pad overhead stays under the configured memory budget.

:func:`enforce_budget` implements graceful degradation: while the
transformed layout's footprint exceeds the budget ceiling, the largest
intra-variable pad is dropped (the array shrinks back to its declared
sizes and everything placed after it slides down), reporting each drop.
Degradation trades conflict-avoidance for memory — the miss-rate
regression guard downstream still protects the outcome.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.guard.config import DroppedPad, GuardViolation
from repro.ir.arrays import ArrayDecl, ScalarDecl
from repro.layout.layout import MemoryLayout, original_layout
from repro.ir.program import Program


def _placed_intervals(
    prog: Program, layout: MemoryLayout
) -> List[Tuple[int, int, str]]:
    """(start, end, name) for every placed variable, sorted by start."""
    intervals = []
    for decl in prog.decls:
        if not layout.has_base(decl.name):
            continue
        base = layout.base(decl.name)
        try:
            size = layout.size_bytes(decl.name)
        except Exception:
            continue  # rank corruption; reported separately
        intervals.append((base, base + size, decl.name))
    intervals.sort()
    return intervals


def pad_overhead_bytes(prog: Program, layout: MemoryLayout) -> int:
    """Extra memory the transformed layout costs over the untouched one."""
    baseline = original_layout(prog).end_address()
    return max(0, layout.end_address() - baseline)


def check_layout(
    prog: Program,
    layout: MemoryLayout,
    budget_bytes: Optional[int] = None,
) -> List[GuardViolation]:
    """Every invariant violation in the layout (empty when sound)."""
    violations: List[GuardViolation] = []

    def flag(kind: str, message: str, variable: Optional[str] = None) -> None:
        violations.append(
            GuardViolation(kind, "invariants", message, variable=variable)
        )

    for decl in prog.decls:
        name = decl.name
        if not layout.has_base(name):
            flag("unplaced", f"variable {name!r} has no base address", name)
            continue
        base = layout.base(name)
        if base < 0:
            flag("negative_base", f"{name!r} placed at {base}", name)
        align = (
            decl.element_type.size_bytes
            if isinstance(decl, (ArrayDecl, ScalarDecl))
            else 1
        )
        if align > 1 and base % align:
            flag(
                "misaligned",
                f"{name!r} at {base} is not {align}-byte aligned",
                name,
            )
        if not isinstance(decl, ArrayDecl):
            continue
        sizes = layout.dim_sizes(name)
        if len(sizes) != decl.rank:
            flag(
                "rank",
                f"{name!r}: {len(sizes)} dim sizes for rank {decl.rank}",
                name,
            )
            continue
        for dim, (padded, declared) in enumerate(zip(sizes, decl.dim_sizes)):
            if padded < 1:
                flag(
                    "shrunk",
                    f"{name!r} dim {dim} has a "
                    f"{'zero' if padded == 0 else 'negative'} "
                    f"extent ({padded})",
                    name,
                )
            elif padded < declared:
                flag(
                    "shrunk",
                    f"{name!r} dim {dim} shrank below the declared size "
                    f"({declared} -> {padded})",
                    name,
                )
        # The declared sizes are only a floor; a dimension shrunk from
        # its committed padded size back toward the declaration keeps
        # strides self-consistent and may overlap nothing, so check the
        # working sizes against the witness recorded by set_dim_sizes.
        try:
            committed = layout.committed_dim_sizes(name)
        except Exception:
            committed = decl.dim_sizes
        if len(committed) == len(sizes):
            for dim, (padded, want) in enumerate(zip(sizes, committed)):
                # below-declared / non-positive extents are already
                # condemned above; flag only the otherwise-silent range
                if padded < want and padded >= max(1, decl.dim_sizes[dim]):
                    flag(
                        "shrink",
                        f"{name!r} dim {dim} shrank below the committed "
                        f"padded size ({want} -> {padded})",
                        name,
                    )
        # Strides must be exactly the column-major strides of the padded
        # sizes; recompute independently of the layout's own arithmetic.
        expected = []
        acc = decl.element_size
        for size in sizes:
            expected.append(acc)
            acc *= size
        try:
            actual = list(layout.strides(name))
        except Exception as exc:
            flag("rank", f"{name!r}: strides unavailable ({exc})", name)
            continue
        if actual != expected:
            flag(
                "rank",
                f"{name!r}: strides {actual} inconsistent with padded "
                f"sizes {list(sizes)} (expected {expected})",
                name,
            )

    intervals = _placed_intervals(prog, layout)
    for (s0, e0, n0), (s1, e1, n1) in zip(intervals, intervals[1:]):
        if s1 < e0:
            flag(
                "overlap",
                f"{n0!r} [{s0},{e0}) overlaps {n1!r} [{s1},{e1})",
                n1,
            )

    if budget_bytes is not None:
        overhead = pad_overhead_bytes(prog, layout)
        if overhead > budget_bytes:
            flag(
                "budget",
                f"pad overhead {overhead}B exceeds budget {budget_bytes}B",
            )
    return violations


def enforce_budget(
    prog: Program,
    layout: MemoryLayout,
    budget_bytes: int,
) -> List[DroppedPad]:
    """Shrink the layout under the budget by dropping the largest intra pads.

    Mutates ``layout`` in place.  Each drop resets one array to its
    declared dimension sizes and slides every later variable down by the
    freed bytes (rounded down to the layout's coarsest alignment so no
    base goes unaligned).  Returns the drops in the order applied; when
    they run out the layout may still be over budget — the caller's
    :func:`check_layout` pass reports that as a ``budget`` violation.
    """
    dropped: List[DroppedPad] = []
    aligns = [
        d.element_type.size_bytes
        for d in prog.decls
        if isinstance(d, (ArrayDecl, ScalarDecl))
    ]
    coarsest = max(aligns) if aligns else 1
    while pad_overhead_bytes(prog, layout) > budget_bytes:
        candidates = [
            (layout.size_bytes(d.name) - d.size_bytes, d.name)
            for d in prog.arrays
            if layout.has_base(d.name)
            and layout.size_bytes(d.name) > d.size_bytes
        ]
        if not candidates:
            break
        freed, name = max(candidates)
        decl = prog.array(name)
        pads = layout.intra_pads(name)
        victim_base = layout.base(name)
        layout.set_dim_sizes(name, decl.dim_sizes)
        shift = freed // coarsest * coarsest
        if shift:
            for other in prog.decls:
                if (
                    layout.has_base(other.name)
                    and layout.base(other.name) > victim_base
                ):
                    layout.set_base(
                        other.name, layout.base(other.name) - shift
                    )
        dropped.append(DroppedPad(array=name, elements=pads, bytes_freed=freed))
    return dropped
