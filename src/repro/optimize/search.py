"""Beam search + branch-and-bound over the padding constraint network.

``optimize_layout`` is the engine behind ``pad --optimize``.  Where the
paper's heuristics commit one decision at a time (and provably get stuck
— see ``tests/corpus/optimize``), the search explores *joint* intra/inter
assignments:

1. **Beam search** walks the variables in placement order, keeping the
   ``beam`` best partial assignments ranked by static penalty (violated
   conflict constraints among the already-placed prefix) then footprint.
2. **Branch-and-bound** refines the best beam survivor: a depth-first
   sweep over the inter variables, pruning any prefix whose penalty
   already exceeds the best complete assignment found (the prefix
   penalty is monotone — placing more units can only add violations —
   so the prune is admissible).
3. Up to ``budget`` surviving candidates are **scored**: with the
   analytic predictor (:func:`repro.analysis.predict.predict_misses`)
   when the program is analyzable — exact conflict-miss counts for the
   price of arithmetic — falling back to JIT simulation otherwise.
4. The greedy heuristic's result is always held as the **incumbent**:
   a candidate replaces it only by scoring *strictly* better, so the
   search can never regress what the paper's pass already achieved.
5. The winner goes through the full guard pipeline (layout invariants,
   semantic sanitizer, miss-rate regression with rollback).  A winner
   the guard rolls back is discarded and the incumbent is emitted, so
   every layout this module returns is guard-clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.predict import predict_misses
from repro.errors import OptimizeError
from repro.guard.config import GuardConfig, GuardReport
from repro.guard.core import check_layout, check_transform
from repro.guard.sanitizer import sanitize
from repro.ir.program import Program
from repro.layout.layout import MemoryLayout, original_layout
from repro.obs import runtime as obs
from repro.optimize.constraints import ConstraintNetwork, build_network
from repro.padding.common import PadParams, PaddingResult

OBJECTIVES = ("miss", "bytes")

#: hard ceiling on branch-and-bound nodes, scaled by the score budget
_BB_NODE_FACTOR = 64

Assignment = Dict[Tuple[str, str], int]


@dataclass(frozen=True)
class LayoutScore:
    """One scored candidate layout."""

    conflicts: int
    total_bytes: int
    scorer: str  # "predict" or "sim"
    miss_rate_pct: float

    def key(self, objective: str) -> Tuple[int, int]:
        """Comparison key under ``objective`` (smaller is better)."""
        if objective == "bytes":
            return (self.total_bytes, self.conflicts)
        return (self.conflicts, self.total_bytes)

    def render(self) -> str:
        """One-line human rendering (``N predicted conflict misses, ...``)."""
        kind = ("predicted" if self.scorer == "predict"
                else "simulated") + " conflict misses"
        return f"{self.conflicts} {kind}, {self.total_bytes} bytes"


@dataclass
class OptimizeResult:
    """Everything ``pad --optimize`` needs to report one search."""

    program: str
    objective: str
    beam: int
    budget: int
    heuristic: str
    incumbent: PaddingResult
    incumbent_score: LayoutScore
    winner_score: LayoutScore
    layout: MemoryLayout
    winner_from: str  # "search" or "incumbent"
    assignment: Assignment = field(default_factory=dict)
    enumerated: int = 0
    scored: int = 0
    scored_predict: int = 0
    scored_sim: int = 0
    prunes: int = 0
    variables: int = 0
    constraints: int = 0
    seeds: Dict[str, int] = field(default_factory=dict)
    guard: Optional[GuardReport] = None
    guard_rolled_back: bool = False

    @property
    def improved(self) -> bool:
        return self.winner_from == "search"

    @property
    def improvement(self) -> int:
        """Conflict misses removed relative to the greedy incumbent."""
        return self.incumbent_score.conflicts - self.winner_score.conflicts

    def describe(self) -> List[str]:
        """Report lines summarizing the search, for the CLI and logs."""
        seeds = ", ".join(
            f"{k}={v}" for k, v in sorted(self.seeds.items())
        ) or "none"
        lines = [
            f"OPTIMIZE {self.program}: objective={self.objective} "
            f"beam={self.beam} budget={self.budget}",
            f"  network: {self.variables} variable(s), "
            f"{self.constraints} constraint(s) (seeds: {seeds})",
            f"  enumerated {self.enumerated} candidate(s), scored "
            f"{self.scored} (predict {self.scored_predict}, "
            f"sim {self.scored_sim}), {self.prunes} pruned",
            f"  incumbent {self.heuristic}: {self.incumbent_score.render()}",
        ]
        if self.improved:
            lines.append(
                f"  winner search: {self.winner_score.render()} "
                f"(improvement {self.improvement})"
            )
        elif self.guard_rolled_back:
            lines.append(
                "  winner incumbent: search's best was rolled back by "
                "the guard; keeping the greedy layout"
            )
        else:
            lines.append(
                "  winner incumbent: search found nothing strictly better"
            )
        if self.guard is not None:
            lines.append(f"  guard: {self.guard.status}")
        return lines


def score_layout(
    prog: Program,
    layout: MemoryLayout,
    params: PadParams,
    jit: str = "auto",
) -> LayoutScore:
    """Conflict misses + footprint for one layout, cheapest honest way.

    The analytic predictor is exact and costs arithmetic; it is tried
    first.  Programs it bails on (non-affine, over budget) fall back to
    JIT simulation, where conflicts are ``misses - cold_misses``.
    """
    cache = params.primary
    outcome = predict_misses(prog, layout, cache)
    if outcome.analyzable:
        pred = outcome.prediction
        conflicts = sum(r.conflict_misses for r in pred.per_ref)
        return LayoutScore(
            conflicts=conflicts,
            total_bytes=layout.end_address(),
            scorer="predict",
            miss_rate_pct=pred.stats.miss_rate_pct,
        )
    from repro import simulate_program

    stats = simulate_program(prog, layout, cache, jit=jit)
    return LayoutScore(
        conflicts=stats.misses - stats.cold_misses,
        total_bytes=layout.end_address(),
        scorer="sim",
        miss_rate_pct=stats.miss_rate_pct,
    )


def vet_layout(
    prog: Program,
    layout: MemoryLayout,
    baseline_layout: Optional[MemoryLayout] = None,
    sanitize_limit: int = 1 << 20,
    budget_bytes: Optional[int] = None,
    reference_layout: Optional[MemoryLayout] = None,
) -> list:
    """Invariant + sanitizer violations for one candidate layout.

    This is the per-candidate slice of the guard pipeline (the miss-rate
    regression needs the winner only).  The property suite runs it over
    every layout the search enumerates.  ``reference_layout`` is the
    layout the generator committed: passing it lets the sanitizer catch
    consistent-but-wrong relocations (swapped or shifted bases) that an
    inversion against the suspect layout itself cannot see.
    """
    violations = list(check_layout(prog, layout, budget_bytes=budget_bytes))
    if violations:
        return violations
    base = baseline_layout or original_layout(prog)
    try:
        violations.extend(
            sanitize(prog, layout, base, limit=sanitize_limit,
                     reference_layout=reference_layout)
        )
    except Exception as exc:  # an unsound layout may crash the tracer
        from repro.guard.config import GuardViolation

        violations.append(
            GuardViolation(
                "out_of_bounds", "sanitizer",
                f"trace interpretation failed: {type(exc).__name__}: {exc}",
            )
        )
    return violations


def enumerate_candidates(
    network: ConstraintNetwork,
    beam: int = 8,
    budget: int = 64,
) -> Tuple[List[Tuple[Assignment, int]], int]:
    """All candidate assignments the search would score, plus prune count.

    Returns ``(candidates, prunes)`` where ``candidates`` is a deduped
    list of ``(assignment, penalty)`` ordered best-first (penalty, then
    footprint) and truncated to ``budget``.
    """
    unit_index = {label: i for i, label in enumerate(network.unit_labels)}
    intra_vars = [v for v in network.variables if v.kind == "intra"]
    inter_vars = [v for v in network.variables if v.kind == "inter"]

    # -- stage A: beam over intra variables (ranked on full layouts with
    # no inter pads, since intra pads shift every later base address) ----
    states: List[Assignment] = [{}]
    for var in intra_vars:
        expanded = [
            {**state, var.key: choice}
            for state in states
            for choice in var.domain
        ]
        if len(expanded) > max(beam, 2) * 4:
            expanded = _rank(network, expanded)[: max(beam, 2) * 4]
        states = expanded
    if intra_vars:
        states = _rank(network, states)[:beam]

    # -- stage B: beam over inter variables in placement order ----------
    for var in inter_vars:
        placed = unit_index[var.name] + 1
        scored = []
        for state in states:
            for choice in var.domain:
                assignment = {**state, var.key: choice}
                prefix = network.materialize(assignment, placed_units=placed)
                scored.append(
                    (network.penalty(prefix), prefix.end_address(), assignment)
                )
        scored.sort(key=lambda t: (t[0], t[1]))
        states = [assignment for _, _, assignment in scored[:beam]]

    candidates: Dict[Tuple, Tuple[Assignment, int]] = {}

    def admit(assignment: Assignment, penalty: Optional[int] = None) -> None:
        sig = tuple(sorted(assignment.items()))
        if sig in candidates:
            return
        if penalty is None:
            penalty = network.penalty(network.materialize(assignment))
        candidates[sig] = (assignment, penalty)

    for state in states:
        admit(state)

    # -- stage C: branch-and-bound refinement around the beam's best ----
    prunes = 0
    if states and inter_vars:
        best_assignment, best_penalty = min(
            (candidates[tuple(sorted(s.items()))] for s in states),
            key=lambda pair: pair[1],
        )
        intra_fixed = {
            k: v for k, v in best_assignment.items() if k[0] == "intra"
        }
        completions, prunes = _branch_and_bound(
            network, intra_fixed, inter_vars, unit_index,
            incumbent_penalty=best_penalty,
            node_cap=max(256, budget * _BB_NODE_FACTOR),
        )
        for penalty, assignment in completions:
            admit(assignment, penalty)

    ordered = sorted(
        candidates.values(),
        key=lambda pair: (
            pair[1],
            network.materialize(pair[0]).end_address(),
        ),
    )
    return ordered[:budget], prunes


def _rank(network: ConstraintNetwork, states: List[Assignment]) -> List[Assignment]:
    scored = []
    for index, state in enumerate(states):
        layout = network.materialize(state)
        scored.append(
            (network.penalty(layout), layout.end_address(), index, state)
        )
    scored.sort(key=lambda t: t[:3])
    return [state for *_, state in scored]


def _branch_and_bound(
    network: ConstraintNetwork,
    intra_fixed: Assignment,
    inter_vars,
    unit_index: Dict[str, int],
    incumbent_penalty: int,
    node_cap: int,
) -> Tuple[List[Tuple[int, Assignment]], int]:
    """DFS over inter variables with monotone-penalty pruning.

    A prefix's penalty never decreases as more units are placed (earlier
    addresses are independent of later choices and constraints only
    *activate* as their arrays get placed), so any prefix already worse
    than the best complete assignment can be cut.
    """
    complete: List[Tuple[int, Assignment]] = []
    prunes = 0
    explored = 0
    best = incumbent_penalty

    def dfs(depth: int, assignment: Assignment) -> None:
        nonlocal prunes, explored, best
        if explored >= node_cap:
            return
        explored += 1
        if depth == len(inter_vars):
            penalty = network.penalty(network.materialize(assignment))
            if penalty <= best:
                best = min(best, penalty)
                complete.append((penalty, dict(assignment)))
            return
        var = inter_vars[depth]
        placed = unit_index[var.name] + 1
        for choice in var.domain:
            assignment[var.key] = choice
            prefix = network.materialize(assignment, placed_units=placed)
            if network.penalty(prefix) > best:
                prunes += 1
            else:
                dfs(depth + 1, assignment)
        del assignment[var.key]

    dfs(0, dict(intra_fixed))
    return complete, prunes


def optimize_layout(
    prog: Program,
    params: PadParams,
    beam: int = 8,
    budget: int = 64,
    objective: str = "miss",
    heuristic: str = "pad",
    jit: str = "auto",
    guard: Optional[GuardConfig] = None,
) -> OptimizeResult:
    """Search for a layout strictly better than the greedy incumbent.

    Raises :class:`OptimizeError` on bad knobs or an unsearchable
    program; never emits a layout that is worse than ``heuristic``'s or
    that the guard pipeline rejects.
    """
    from repro.experiments.runner import HEURISTICS

    if beam < 1:
        raise OptimizeError(f"beam width must be at least 1, got {beam}")
    if budget < 1:
        raise OptimizeError(
            f"candidate budget must be at least 1, got {budget}"
        )
    if objective not in OBJECTIVES:
        raise OptimizeError(
            f"objective {objective!r} unknown; known: {OBJECTIVES}"
        )
    if heuristic not in HEURISTICS:
        raise OptimizeError(
            f"incumbent heuristic {heuristic!r} unknown; "
            f"known: {sorted(HEURISTICS)}"
        )
    obs.counter_add(
        "repro_optimize_runs_total", 1,
        help="layout-optimization searches started",
    )

    with obs.span("optimize.search", program=prog.name):
        incumbent = HEURISTICS[heuristic](prog, params)
        network = build_network(prog, params, incumbent)
        candidates, prunes = enumerate_candidates(network, beam, budget)
        obs.counter_add(
            "repro_optimize_prunes_total", prunes,
            help="branch-and-bound prefixes cut by the penalty bound",
        )

        incumbent_score = _score(prog, incumbent.layout, params, jit)
        scored_predict = scored_sim = 0
        best_candidate: Optional[Tuple[LayoutScore, Assignment,
                                       MemoryLayout]] = None
        for assignment, _penalty in candidates:
            layout = network.materialize(assignment)
            score = _score(prog, layout, params, jit)
            if score.scorer == "predict":
                scored_predict += 1
            else:
                scored_sim += 1
            if best_candidate is None or (
                score.key(objective) < best_candidate[0].key(objective)
            ):
                best_candidate = (score, assignment, layout)

        winner_score = incumbent_score
        winner_layout = incumbent.layout
        winner_assignment: Assignment = {}
        winner_from = "incumbent"
        if best_candidate is not None:
            score, assignment, layout = best_candidate
            beats = score.key(objective) < incumbent_score.key(objective)
            # under the bytes objective, never trade conflict misses
            # away for footprint: the incumbent's miss count is a floor
            if objective == "bytes":
                beats = beats and score.conflicts <= incumbent_score.conflicts
            if beats:
                winner_score, winner_layout = score, layout
                winner_assignment = assignment
                winner_from = "search"

        # -- full guard pipeline on the search's winner ------------------
        guard_report = None
        rolled_back = False
        if winner_from == "search":
            config = guard or GuardConfig()
            if config.strict:
                # rollback semantics, not exceptions: a condemned winner
                # falls back to the incumbent, which is guard-clean
                config = GuardConfig(
                    mode="warn",
                    epsilon_pct=config.epsilon_pct,
                    budget_bytes=config.budget_bytes,
                    sanitize_limit=config.sanitize_limit,
                )
            from repro import simulate_program

            guard_report, _stats = check_transform(
                prog, winner_layout, config,
                simulate_fn=lambda p, lay: simulate_program(
                    p, lay, params.primary, jit=jit
                ),
                baseline_layout=incumbent.layout,
            )
            if guard_report.rolled_back:
                rolled_back = True
                obs.counter_add(
                    "repro_optimize_guard_rollbacks_total", 1,
                    help="search winners the guard rolled back",
                )
                winner_score = incumbent_score
                winner_layout = incumbent.layout
                winner_assignment = {}
                winner_from = "incumbent"

        if winner_from == "search":
            obs.counter_add(
                "repro_optimize_improvements_total", 1,
                help="searches that beat the greedy incumbent",
            )

        return OptimizeResult(
            program=prog.name,
            objective=objective,
            beam=beam,
            budget=budget,
            heuristic=heuristic,
            incumbent=incumbent,
            incumbent_score=incumbent_score,
            winner_score=winner_score,
            layout=winner_layout,
            winner_from=winner_from,
            assignment=winner_assignment,
            enumerated=len(candidates),
            scored=scored_predict + scored_sim + 1,  # + the incumbent
            scored_predict=scored_predict,
            scored_sim=scored_sim,
            prunes=prunes,
            variables=len(network.variables),
            constraints=len(network.constraints),
            seeds=dict(network.seeds),
            guard=guard_report,
            guard_rolled_back=rolled_back,
        )


def _score(prog, layout, params, jit) -> LayoutScore:
    score = score_layout(prog, layout, params, jit=jit)
    obs.counter_add(
        "repro_optimize_candidates_total", 1,
        help="candidate layouts scored, by scorer",
        scorer=score.scorer,
    )
    return score
