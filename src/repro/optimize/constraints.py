"""The constraint network behind ``pad --optimize``.

The paper's heuristics decide one variable (or one dimension) at a time
and keep the first address clearing the pad conditions, so layouts that
require *joint* choices — a column pad here enabling a smaller base pad
there — are out of reach.  Following the constraint-network formulation
of memory layout optimization (Chen & Kandemir), this module expresses
the whole layout as one assignment problem:

* one **intra variable** per safely-paddable array: how many elements to
  add to its leading dimension (the paper's column pad), and
* one **inter variable** per placement unit: how many bytes to skip
  before its base address.

Conflict constraints are seeded from the hot spots the rest of the
pipeline already knows about: the severe uniformly generated pairs that
lint's C001 reports, pathological ``FirstConflict`` leading dimensions
(C002/C003), and the units greedy placement *gave up* on — exactly the
residual hazards ``pad`` cannot fix one decision at a time.

A partial assignment's **penalty** (violated constraints among the
already-placed prefix) is monotone nondecreasing as the assignment is
extended, which is what makes it usable both as a beam ranking and as an
admissible branch-and-bound pruning bound (see
:mod:`repro.optimize.search`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.conflict import severe_conflict
from repro.analysis.euclid import first_conflict
from repro.analysis.linearize import linearized_distance
from repro.analysis.safety import safe_arrays
from repro.errors import OptimizeError
from repro.ir.program import Program
from repro.ir.refs import ArrayRef
from repro.layout.layout import (
    MemoryLayout,
    placement_units,
    place_unit,
)
from repro.padding.common import PaddingResult, PadParams

#: leading-dimension pads a search considers per array (elements)
INTRA_CHOICES = (0, 1, 2, 3, 4, 8)

#: base-address pads a search considers per unit, in cache lines
INTER_LINE_CHOICES = (0, 1, 2, 4, 8, 16)

#: extra inter choices (in lines) for units greedy gave up on — a wider
#: window, since the greedy sweep already proved the narrow one barren
GIVE_UP_LINE_CHOICES = (24, 32, 48, 64)


@dataclass(frozen=True)
class PadVar:
    """One decision variable of the network."""

    kind: str  # "intra" (elements on dim 0) or "inter" (bytes skipped)
    name: str  # array name (intra) or placement-unit label (inter)
    domain: Tuple[int, ...]

    @property
    def key(self) -> Tuple[str, str]:
        return (self.kind, self.name)


@dataclass(frozen=True)
class PairConstraint:
    """A uniformly generated reference pair that must not conflict."""

    array_a: str
    ref_a: ArrayRef
    array_b: str
    ref_b: ArrayRef
    source: str  # where the seed came from: "lint:C001", "severe", ...

    def violated(self, prog: Program, layout: MemoryLayout,
                 caches: Sequence) -> bool:
        """True when the pair's constant distance severely conflicts.

        Inactive (returns ``False``) until both arrays are placed, and
        for pairs whose linearized distance is not constant under the
        candidate layout.
        """
        if not (layout.has_base(self.array_a) and layout.has_base(self.array_b)):
            return False
        delta = linearized_distance(
            self.ref_a, prog.array(self.array_a),
            self.ref_b, prog.array(self.array_b),
            layout.dim_sizes(self.array_a), layout.dim_sizes(self.array_b),
            layout.base(self.array_a), layout.base(self.array_b),
        )
        if not delta.is_constant:
            return False
        return any(
            severe_conflict(delta.const, c.size_bytes, c.line_bytes)
            for c in caches
        )


@dataclass(frozen=True)
class ColumnConstraint:
    """A leading dimension whose columns fold onto few cache locations.

    Violated while ``FirstConflict(Cs, Col, Ls)`` stays below the number
    of columns a nest actually sweeps — the C002 pathology.
    """

    array: str
    min_first_conflict: int
    source: str

    def violated(self, prog: Program, layout: MemoryLayout,
                 caches: Sequence) -> bool:
        """True when the padded column still folds before the sweep ends.

        Inactive (returns ``False``) until the array is placed.
        """
        if not layout.has_base(self.array):
            return False
        col = layout.column_size_bytes(self.array)
        return any(
            first_conflict(c.size_bytes, col, c.line_bytes)
            < self.min_first_conflict
            for c in caches
        )


@dataclass
class ConstraintNetwork:
    """Decision variables plus the conflict constraints that bind them."""

    prog: Program
    params: PadParams
    variables: List[PadVar] = field(default_factory=list)
    constraints: List[object] = field(default_factory=list)
    #: seed provenance, for reports: source tag -> count
    seeds: Dict[str, int] = field(default_factory=dict)
    #: placement-unit labels in placement order
    unit_labels: Tuple[str, ...] = ()

    def penalty(self, layout: MemoryLayout) -> int:
        """Violated constraints under a (possibly partially placed) layout."""
        return sum(
            1 for c in self.constraints
            if c.violated(self.prog, layout, self.params.caches)
        )

    def materialize(
        self, assignment: Dict[Tuple[str, str], int],
        placed_units: Optional[int] = None,
    ) -> MemoryLayout:
        """Build the layout a (possibly partial) assignment describes.

        Intra pads apply first (they change unit sizes and strides),
        then units are placed in declaration order, each skipping its
        assigned pad bytes.  ``placed_units`` truncates placement for
        partial-penalty evaluation.  All pads are nonnegative, so the
        result is grow-only and overlap-free by construction.
        """
        layout = MemoryLayout(self.prog)
        for var in self.variables:
            if var.kind != "intra":
                continue
            pad = assignment.get(var.key, 0)
            if pad:
                layout.pad_dim(var.name, 0, pad)
        cursor = 0
        units = placement_units(self.prog, layout)
        if placed_units is not None:
            units = units[:placed_units]
        for unit in units:
            pad = assignment.get(("inter", unit.label), 0)
            address = _align(cursor + pad, unit.alignment)
            place_unit(layout, unit, address)
            cursor = address + unit.size_bytes
        return layout


def _align(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    return (value + alignment - 1) // alignment * alignment


def _line_domain(params: PadParams, lines: Sequence[int]) -> Tuple[int, ...]:
    ls = max(c.line_bytes for c in params.caches)
    return tuple(sorted({n * ls for n in lines}))


def build_network(
    prog: Program,
    params: PadParams,
    greedy: Optional[PaddingResult] = None,
) -> ConstraintNetwork:
    """Seed the constraint network for one (already globalized) program.

    ``greedy`` is the incumbent PAD result: its residual lint findings
    and give-ups widen the domains exactly where the one-at-a-time pass
    failed, and its chosen pads are grafted into the domains so the
    search space always contains the incumbent's neighborhood.
    """
    network = ConstraintNetwork(prog=prog, params=params)
    cache = params.primary

    def seed(tag: str, n: int = 1) -> None:
        network.seeds[tag] = network.seeds.get(tag, 0) + n

    # -- constraints: severe pairs of the *greedy* layout (hot spots) ------
    greedy_layout = greedy.layout if greedy is not None else None
    if greedy_layout is not None:
        from repro.analysis.diagnostics import severe_conflicts

        seen = set()
        for f in severe_conflicts(prog, greedy_layout, cache):
            sig = (f.array_a, str(f.ref_a), f.array_b, str(f.ref_b))
            if sig in seen:
                continue
            seen.add(sig)
            network.constraints.append(
                PairConstraint(f.array_a, f.ref_a, f.array_b, f.ref_b,
                               source="severe")
            )
            seed("severe")

    # -- constraints: every uniformly generated cross-array pair -----------
    # (the search must KEEP the pairs greedy already cleared clear; these
    # are cheap to test and make the static penalty meaningful)
    from repro.analysis.uniform import uniform_groups

    seen_pairs = set()
    for nest in prog.loop_nests():
        for group in uniform_groups(prog, nest):
            members = group.refs
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    name_a, ref_a = members[i]
                    name_b, ref_b = members[j]
                    sig = (name_a, str(ref_a.subscripts),
                           name_b, str(ref_b.subscripts))
                    if name_a == name_b or sig in seen_pairs:
                        continue
                    seen_pairs.add(sig)
                    network.constraints.append(
                        PairConstraint(name_a, ref_a, name_b, ref_b,
                                       source="uniform")
                    )
                    seed("uniform")

    # -- constraints and hints from lint's C-family hot spots --------------
    lint_hot: Dict[str, List[str]] = {}
    if greedy is not None and greedy.lint is not None:
        findings = greedy.lint.findings
    else:
        from repro.lint import LintConfig
        from repro.lint.engine import lint_program

        findings = lint_program(
            prog, config=LintConfig(cache=cache, select=("C",)),
            layout=greedy_layout,
        ).findings
    for finding in findings:
        if finding.array:
            lint_hot.setdefault(finding.array, []).append(finding.rule)
            seed(f"lint:{finding.rule}")

    # -- constraints: pathological leading dimensions (FirstConflict) ------
    paddable = safe_arrays(prog)
    columns_swept = _columns_swept(prog)
    for decl in prog.arrays:
        if decl.rank < 2:
            continue
        swept = columns_swept.get(decl.name, 0)
        if swept < 2:
            continue
        fc = first_conflict(
            cache.size_bytes, decl.dim_sizes[0] * decl.element_size,
            cache.line_bytes,
        )
        if fc < swept:
            network.constraints.append(
                ColumnConstraint(decl.name, min(swept, fc * 2),
                                 source="first-conflict")
            )
            seed("first-conflict")

    # -- decision variables -------------------------------------------------
    for decl in prog.arrays:
        if decl.name not in paddable or decl.rank < 2:
            continue
        domain = set(INTRA_CHOICES)
        if greedy is not None:
            # graft the incumbent's intra choice into the domain
            domain.add(sum(
                d.elements for d in greedy.intra_decisions
                if d.array == decl.name and d.dim_index == 0
            ))
        limit = params.intra_pad_limit
        domain = tuple(sorted(p for p in domain if 0 <= p <= limit))
        network.variables.append(PadVar("intra", decl.name, domain))

    base_layout = MemoryLayout(prog)
    gave_up = set(greedy.inter_failures) if greedy is not None else set()
    greedy_inter = {
        d.unit: d.pad_bytes for d in (greedy.inter_decisions if greedy else [])
    }
    units = placement_units(prog, base_layout)
    network.unit_labels = tuple(u.label for u in units)
    for index, unit in enumerate(units):
        if index == 0 and len(units) > 1:
            # the first unit's base is the origin; padding it only
            # translates the whole layout
            continue
        lines = list(INTER_LINE_CHOICES)
        if unit.label in gave_up or any(n in lint_hot for n in unit.names):
            lines += list(GIVE_UP_LINE_CHOICES)
        domain = set(_line_domain(params, lines))
        domain.add(greedy_inter.get(unit.label, 0))
        network.variables.append(
            PadVar("inter", unit.label, tuple(sorted(domain)))
        )

    if not network.variables:
        raise OptimizeError(
            f"{prog.name}: no controllable layout decisions to search "
            "(no safely paddable arrays and a single placement unit)"
        )
    return network


def _columns_swept(prog: Program) -> Dict[str, int]:
    """Upper-bound columns each array's references sweep in any nest."""
    swept: Dict[str, int] = {}
    for nest in prog.loop_nests():
        trip = 1
        for loop in (nest, *nest.inner_loops()):
            if loop.lower.is_constant and loop.upper.is_constant:
                count = max(
                    0, (loop.upper.const - loop.lower.const)
                    // abs(loop.step) + 1,
                )
                trip = max(trip, count)
        for ref in nest.refs():
            if len(ref.subscripts) < 2:
                continue
            swept[ref.array] = max(swept.get(ref.array, 0), min(trip, 4096))
    return swept
