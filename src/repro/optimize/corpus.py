"""Seeded corpus of kernels where greedy padding provably loses.

Each entry pins a (kernel, cache geometry, incumbent heuristic) where
the paper's one-decision-at-a-time padding leaves conflict misses that
the joint search removes — or, for the regression entries, where greedy
is already optimal and the search must *tie*, never regress.  The CI
``optimize`` gate (``scripts/bench_snapshot.py --compare --optimize``)
and ``tests/test_optimize_search.py`` both consume this module, so the
claims stay pinned to executable kernels rather than prose.

Why greedy loses on the win entries:

* ``jacobi-pow2`` / ``stencil5`` / ``colsweep`` — power-of-two leading
  dimensions at a power-of-two cache: INTRAPAD and INTERPAD each fix
  the hazard they can see, but the composition needs a *joint* choice
  of column pads and base offsets across arrays.
* ``transpose`` — the ``B(i,j) = A(j,i)`` pair is not uniformly
  generated, so INTERPAD's constant-distance analysis is blind to it;
  the predictor scoring the search counts its cross-conflicts exactly.
* ``matmul`` — three arrays with different reuse directions; any
  single-array pad greedy commits to forecloses the pair it did not
  look at.
* ``giveup-sweep`` / ``triad-pow2`` — regression pins: greedy's answer
  is already conflict-optimal (``giveup-sweep`` even gives up on C, yet
  the kept address is fine).  The search must keep the incumbent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.cache.config import CacheConfig
from repro.ir.program import Program
from repro.padding.common import PadParams


@dataclass(frozen=True)
class CorpusKernel:
    """One corpus entry: source, geometry, incumbent, and expectation."""

    name: str
    source: str
    cache_bytes: int
    line_bytes: int
    m_lines: int = 4
    heuristic: str = "pad"
    #: True when the search must *strictly* beat greedy's conflict count
    expect_win: bool = False
    params: Dict[str, int] = field(default_factory=dict)
    why: str = ""

    def program(self) -> Program:
        """Parse the kernel source into a fresh ``Program``."""
        from repro.frontend import parse_program

        return parse_program(self.source, params=self.params or None)

    def cache(self) -> CacheConfig:
        """The cache geometry the kernel is pinned against."""
        return CacheConfig(size_bytes=self.cache_bytes,
                           line_bytes=self.line_bytes)

    def pad_params(self) -> PadParams:
        """Padding parameters derived from :meth:`cache`."""
        return PadParams.for_cache(self.cache(), m_lines=self.m_lines)


CORPUS: Tuple[CorpusKernel, ...] = (
    CorpusKernel(
        name="jacobi-pow2",
        source="""
program jacobi
  param N = 128
  real*8 A(N,N), B(N,N)
  do i = 2, N-1
    do j = 2, N-1
      B(j,i) = A(j-1,i) + A(j,i-1) + A(j+1,i) + A(j,i+1)
    end do
  end do
end
""",
        cache_bytes=8192, line_bytes=32, heuristic="pad", expect_win=True,
        why="pow2 columns at a pow2 cache need a joint intra+inter choice",
    ),
    CorpusKernel(
        name="transpose",
        source="""
program transpose
  param N = 64
  real*8 A(N,N), B(N,N)
  do i = 1, N
    do j = 1, N
      B(i,j) = A(j,i)
    end do
  end do
end
""",
        cache_bytes=4096, line_bytes=32, heuristic="pad", expect_win=True,
        why="the A/B pair is not uniformly generated, so INTERPAD is blind",
    ),
    CorpusKernel(
        name="matmul",
        source="""
program matmul
  param N = 32
  real*8 A(N,N), B(N,N), C(N,N)
  do i = 1, N
    do k = 1, N
      do j = 1, N
        C(j,i) = C(j,i) + A(j,k) * B(k,i)
      end do
    end do
  end do
end
""",
        cache_bytes=2048, line_bytes=32, heuristic="pad", expect_win=True,
        why="three reuse directions; each greedy pad forecloses another pair",
    ),
    CorpusKernel(
        name="stencil5",
        source="""
program stencil5
  param N = 64
  real*8 A(N,N), B(N,N), C(N,N)
  do i = 2, N-1
    do j = 2, N-1
      C(j,i) = A(j,i) + B(j,i) + A(j-1,i) + B(j,i-1)
    end do
  end do
end
""",
        cache_bytes=4096, line_bytes=32, heuristic="pad", expect_win=True,
        why="cross-array stencil reuse across pow2 columns",
    ),
    CorpusKernel(
        name="colsweep",
        source="""
program colsweep
  param N = 128
  real*8 A(N,N), B(N,N)
  do j = 1, N
    do i = 1, N
      B(j,i) = A(j,i) * 2.0
    end do
  end do
end
""",
        cache_bytes=8192, line_bytes=32, heuristic="pad", expect_win=True,
        why="row-order sweep over pow2 columns folds every row onto one set",
    ),
    CorpusKernel(
        name="giveup-sweep",
        source="""
program giveup
  real*8 A(8), B(8), C(8)
  do t = 1, 8
    do i = 1, 8
      C(i) = A(i) + B(i)
    end do
  end do
end
""",
        cache_bytes=256, line_bytes=32, m_lines=4, heuristic="padlite",
        expect_win=False,
        why="PADLITE gives up on C (M = Cs/2 is unsatisfiable for a third "
            "array) but the kept address is conflict-free: the search "
            "must tie, not regress",
    ),
    CorpusKernel(
        name="triad-pow2",
        source="""
program triad
  param N = 32
  real*8 A(N,N), B(N,N), C(N,N)
  do i = 1, N
    do j = 1, N
      C(j,i) = A(j,i) + B(j,i)
    end do
  end do
end
""",
        cache_bytes=2048, line_bytes=32, heuristic="pad", expect_win=False,
        why="greedy already reaches zero conflicts: the incumbent must hold",
    ),
)


def corpus_kernel(name: str) -> CorpusKernel:
    """Look up one corpus entry by name (OptimizeError if unknown)."""
    for kernel in CORPUS:
        if kernel.name == name:
            return kernel
    from repro.errors import OptimizeError

    raise OptimizeError(
        f"unknown corpus kernel {name!r}; known: "
        f"{[k.name for k in CORPUS]}"
    )
