"""Search-based layout optimization (``pad --optimize``).

The paper's PAD/PADLITE heuristics fix one variable at a time; this
package treats inter-variable base addresses and intra-variable
dimension pads as one constraint network and searches it jointly —
beam search plus branch-and-bound refinement — scoring candidates with
the analytic miss predictor (JIT simulation as fallback).  The greedy
result is always the incumbent: the search can improve on it, never
regress it, and every emitted layout is guard-clean.

See ``docs/OPTIMIZE.md`` for the full design.
"""

from repro.optimize.constraints import (
    ColumnConstraint,
    ConstraintNetwork,
    GIVE_UP_LINE_CHOICES,
    INTER_LINE_CHOICES,
    INTRA_CHOICES,
    PadVar,
    PairConstraint,
    build_network,
)
from repro.optimize.corpus import CORPUS, CorpusKernel, corpus_kernel
from repro.optimize.search import (
    LayoutScore,
    OBJECTIVES,
    OptimizeResult,
    enumerate_candidates,
    optimize_layout,
    score_layout,
    vet_layout,
)

__all__ = [
    "CORPUS",
    "ColumnConstraint",
    "ConstraintNetwork",
    "CorpusKernel",
    "corpus_kernel",
    "GIVE_UP_LINE_CHOICES",
    "INTER_LINE_CHOICES",
    "INTRA_CHOICES",
    "LayoutScore",
    "OBJECTIVES",
    "OptimizeResult",
    "PadVar",
    "PairConstraint",
    "build_network",
    "enumerate_candidates",
    "optimize_layout",
    "score_layout",
    "vet_layout",
]
