"""Abstract syntax tree for the kernel DSL.

The AST mirrors source structure; lowering (:mod:`repro.frontend.lower`)
turns it into the analysis IR, folding parameters, checking affinity of
subscripts and extracting the reference stream from arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- expressions ------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """A numeric literal (float literals allowed only in RHS arithmetic)."""

    value: Union[int, float]
    line: int = 0


@dataclass(frozen=True)
class Name:
    """A bare identifier: parameter, loop variable or scalar."""

    ident: str
    line: int = 0


@dataclass(frozen=True)
class Call:
    """``name(arg, ...)`` — an array reference or intrinsic function call."""

    ident: str
    args: Tuple["Expr", ...]
    line: int = 0


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic: ``+ - * /``."""

    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True)
class UnOp:
    """Unary minus/plus."""

    op: str
    operand: "Expr"
    line: int = 0


Expr = Union[Num, Name, Call, BinOp, UnOp]


# -- declarations and directives -----------------------------------------------


@dataclass(frozen=True)
class DimSpec:
    """One declared dimension: size expression, optional lower bound.

    ``lower:upper`` syntax gives both; a single expression means lower 1.
    """

    size: Optional[Expr]
    lower: Optional[Expr] = None
    upper: Optional[Expr] = None
    line: int = 0


@dataclass(frozen=True)
class Entity:
    """One declared name with optional dimensions."""

    ident: str
    dims: Tuple[DimSpec, ...]
    line: int = 0


@dataclass(frozen=True)
class DeclStmt:
    """A type declaration line, e.g. ``real*8 A(N,N), B(N,N)``."""

    type_name: str
    entities: Tuple[Entity, ...]
    line: int = 0


@dataclass(frozen=True)
class ParamStmt:
    """``param N = 512`` — a compile-time integer parameter."""

    ident: str
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class Directive:
    """Safety / storage directives: unsafe, parameter_array, local, common."""

    kind: str
    names: Tuple[str, ...]
    block: str = ""
    nosplit: bool = False
    line: int = 0


# -- executable statements --------------------------------------------------


@dataclass(frozen=True)
class AssignStmt:
    """``lhs = rhs`` where lhs is an array reference or scalar name."""

    target: Expr
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class TouchStmt:
    """``touch ref, ref`` — explicit read-only accesses."""

    refs: Tuple[Expr, ...]
    line: int = 0


@dataclass(frozen=True)
class AccessStmt:
    """``access load ref, store ref`` — fully explicit reference list."""

    items: Tuple[Tuple[str, Expr], ...]
    line: int = 0


@dataclass
class DoStmt:
    """``do var = lo, hi [, step]`` ... ``end do``."""

    var: str
    lower: Expr
    upper: Expr
    step: Optional[Expr]
    body: List["Node"] = field(default_factory=list)
    line: int = 0


Node = Union[AssignStmt, TouchStmt, AccessStmt, DoStmt]


@dataclass
class ProgramAST:
    """A parsed program before lowering."""

    name: str
    params: List[ParamStmt] = field(default_factory=list)
    decls: List[DeclStmt] = field(default_factory=list)
    directives: List[Directive] = field(default_factory=list)
    body: List[Node] = field(default_factory=list)
    source_lines: int = 0
    line: int = 0
