"""Fortran-like kernel DSL front end."""

from repro.frontend.evaluate import Evaluator, evaluate_program
from repro.frontend.lexer import tokenize
from repro.frontend.lower import lower_ast, parse_program
from repro.frontend.parser import parse_source

__all__ = [
    "Evaluator",
    "evaluate_program",
    "lower_ast",
    "parse_program",
    "parse_source",
    "tokenize",
]
