"""Tokenizer for the kernel DSL.

Line-oriented: logical statements end at newlines, which the lexer emits
as NEWLINE tokens (consecutive blank lines collapse).  Comments start with
``#`` or ``!`` and run to end of line.  Numbers may be integers or simple
decimals (decimals appear only inside right-hand-side arithmetic, where
their value is irrelevant to the trace).  Names may contain letters,
digits, underscores and ``$``, starting with a letter or underscore.

Fortran type names like ``real*8`` lex as NAME STAR NUMBER; the parser
reassembles them.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError
from repro.frontend.tokens import Token, TokenKind

_SINGLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    ":": TokenKind.COLON,
}


def tokenize(source: str) -> List[Token]:
    """Tokenize DSL source text into a token list ending with EOF."""
    tokens: List[Token] = []
    line_no = 1
    for raw_line in source.splitlines():
        _tokenize_line(raw_line, line_no, tokens)
        line_no += 1
    if tokens and tokens[-1].kind != TokenKind.NEWLINE:
        tokens.append(Token(TokenKind.NEWLINE, "\n", line_no, 1))
    tokens.append(Token(TokenKind.EOF, "", line_no, 1))
    return tokens


def _tokenize_line(text: str, line_no: int, tokens: List[Token]) -> None:
    i = 0
    emitted = False
    length = len(text)
    while i < length:
        ch = text[i]
        if ch in " \t\r":
            i += 1
            continue
        if ch in "#!":
            break
        column = i + 1
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, line_no, column))
            i += 1
            emitted = True
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < length and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # A dot not followed by a digit ends the number (e.g. `1.`)
                    if i + 1 >= length or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            lexeme = text[start:i]
            value = float(lexeme) if "." in lexeme else int(lexeme)
            tokens.append(Token(TokenKind.NUMBER, lexeme, line_no, column, value))
            emitted = True
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (text[i].isalnum() or text[i] in "_$"):
                i += 1
            tokens.append(Token(TokenKind.NAME, text[start:i], line_no, column))
            emitted = True
            continue
        raise LexError(f"unexpected character {ch!r}", line_no, column)
    if emitted:
        tokens.append(Token(TokenKind.NEWLINE, "\n", line_no, length + 1))
