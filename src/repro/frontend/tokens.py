"""Token definitions for the kernel DSL."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class TokenKind(enum.Enum):
    """Lexical token categories."""

    NAME = "name"
    NUMBER = "number"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    COLON = ":"
    NEWLINE = "newline"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int
    value: Union[int, float, None] = None

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.column}"
