"""Recursive-descent parser for the kernel DSL.

Grammar (line oriented; ``#``/``!`` comments; keywords case-insensitive)::

    program   := 'program' NAME NL item* 'end' NL?
    item      := param | decl | directive | exec
    param     := 'param' NAME '=' expr NL
    decl      := typename entity (',' entity)* NL
    typename  := NAME ('*' NUMBER)? | 'double' 'precision'
    entity    := NAME ('(' dim (',' dim)* ')')?
    dim       := expr | expr ':' expr
    directive := 'unsafe' names | 'parameter_array' names | 'local' names
               | 'common' '/' NAME '/' names ('nosplit')?
    exec      := do | assign | touch | access
    do        := 'do' NAME '=' expr ',' expr (',' expr)? NL exec* 'end' 'do' NL
    assign    := postfix '=' expr NL
    touch     := 'touch' postfix (',' postfix)* NL
    access    := 'access' mode postfix (',' mode postfix)* NL ;  mode := 'load'|'store'
    expr      := term (('+'|'-') term)*
    term      := unary (('*'|'/') unary)*
    unary     := ('-'|'+') unary | postfix
    postfix   := NAME ('(' expr (',' expr)* ')')? | NUMBER | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind

_KEYWORDS = {
    "program",
    "end",
    "do",
    "param",
    "touch",
    "access",
    "unsafe",
    "parameter_array",
    "local",
    "common",
    "nosplit",
    "load",
    "store",
}

_TYPE_NAMES = {"real", "integer", "double", "byte"}


class Parser:
    """Token-stream parser producing a :class:`ProgramAST`."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.source_lines = source.count("\n") + 1

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, kind: TokenKind, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        if text is not None and token.text.lower() != text:
            return False
        return True

    def _expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            expected = text or kind.name
            raise ParseError(
                f"expected {expected}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _keyword(self, word: str) -> bool:
        return self._check(TokenKind.NAME, word)

    def _skip_newlines(self) -> None:
        while self._check(TokenKind.NEWLINE):
            self._advance()

    def _end_of_statement(self) -> None:
        if self._check(TokenKind.EOF):
            return
        self._expect(TokenKind.NEWLINE)
        self._skip_newlines()

    # -- program structure --------------------------------------------------

    def parse(self) -> ast.ProgramAST:
        """Parse a whole program."""
        self._skip_newlines()
        program_tok = self._expect(TokenKind.NAME, "program")
        name = self._expect(TokenKind.NAME).text
        self._end_of_statement()
        prog = ast.ProgramAST(
            name=name, source_lines=self.source_lines, line=program_tok.line
        )
        while not self._keyword("end"):
            token = self._peek()
            if token.kind == TokenKind.EOF:
                raise ParseError("unexpected end of file: missing 'end'", token.line, 1)
            self._parse_item(prog)
        self._expect(TokenKind.NAME, "end")
        self._skip_newlines()
        return prog

    def _parse_item(self, prog: ast.ProgramAST) -> None:
        token = self._peek()
        word = token.text.lower() if token.kind == TokenKind.NAME else ""
        if word == "param":
            prog.params.append(self._parse_param())
        elif word in _TYPE_NAMES:
            prog.decls.append(self._parse_decl())
        elif word in ("unsafe", "parameter_array", "local"):
            prog.directives.append(self._parse_flag_directive())
        elif word == "common":
            prog.directives.append(self._parse_common())
        else:
            prog.body.append(self._parse_exec())

    def _parse_param(self) -> ast.ParamStmt:
        line = self._expect(TokenKind.NAME, "param").line
        ident = self._expect(TokenKind.NAME).text
        self._expect(TokenKind.ASSIGN)
        value = self._parse_expr()
        self._end_of_statement()
        return ast.ParamStmt(ident, value, line)

    def _parse_decl(self) -> ast.DeclStmt:
        first = self._advance()
        type_name = first.text.lower()
        if type_name == "double":
            nxt = self._expect(TokenKind.NAME)
            if nxt.text.lower() != "precision":
                raise ParseError("expected 'precision' after 'double'", nxt.line, nxt.column)
            type_name = "double precision"
        elif self._check(TokenKind.STAR):
            self._advance()
            width = self._expect(TokenKind.NUMBER)
            type_name = f"{type_name}*{width.text}"
        entities = [self._parse_entity()]
        while self._check(TokenKind.COMMA):
            self._advance()
            entities.append(self._parse_entity())
        self._end_of_statement()
        return ast.DeclStmt(type_name, tuple(entities), first.line)

    def _parse_entity(self) -> ast.Entity:
        name_tok = self._expect(TokenKind.NAME)
        dims: List[ast.DimSpec] = []
        if self._check(TokenKind.LPAREN):
            self._advance()
            dims.append(self._parse_dim())
            while self._check(TokenKind.COMMA):
                self._advance()
                dims.append(self._parse_dim())
            self._expect(TokenKind.RPAREN)
        return ast.Entity(name_tok.text, tuple(dims), name_tok.line)

    def _parse_dim(self) -> ast.DimSpec:
        line = self._peek().line
        first = self._parse_expr()
        if self._check(TokenKind.COLON):
            self._advance()
            upper = self._parse_expr()
            return ast.DimSpec(size=None, lower=first, upper=upper, line=line)
        return ast.DimSpec(size=first, line=line)

    def _parse_flag_directive(self) -> ast.Directive:
        keyword = self._advance()
        names = [self._expect(TokenKind.NAME).text]
        while self._check(TokenKind.COMMA):
            self._advance()
            names.append(self._expect(TokenKind.NAME).text)
        self._end_of_statement()
        return ast.Directive(keyword.text.lower(), tuple(names), line=keyword.line)

    def _parse_common(self) -> ast.Directive:
        keyword = self._expect(TokenKind.NAME, "common")
        self._expect(TokenKind.SLASH)
        block = self._expect(TokenKind.NAME).text
        self._expect(TokenKind.SLASH)
        names = [self._expect(TokenKind.NAME).text]
        while self._check(TokenKind.COMMA):
            self._advance()
            names.append(self._expect(TokenKind.NAME).text)
        nosplit = False
        if self._keyword("nosplit"):
            self._advance()
            nosplit = True
        self._end_of_statement()
        return ast.Directive(
            "common", tuple(names), block=block, nosplit=nosplit, line=keyword.line
        )

    # -- executable statements -------------------------------------------------

    def _parse_exec(self) -> ast.Node:
        token = self._peek()
        word = token.text.lower() if token.kind == TokenKind.NAME else ""
        if word == "do":
            return self._parse_do()
        if word == "touch":
            return self._parse_touch()
        if word == "access":
            return self._parse_access()
        return self._parse_assign()

    def _parse_do(self) -> ast.DoStmt:
        do_tok = self._expect(TokenKind.NAME, "do")
        var = self._expect(TokenKind.NAME).text
        self._expect(TokenKind.ASSIGN)
        lower = self._parse_expr()
        self._expect(TokenKind.COMMA)
        upper = self._parse_expr()
        step = None
        if self._check(TokenKind.COMMA):
            self._advance()
            step = self._parse_expr()
        self._end_of_statement()
        body: List[ast.Node] = []
        while True:
            if self._keyword("end") and self._peek(1).text.lower() == "do":
                self._advance()
                self._advance()
                self._end_of_statement()
                break
            if self._check(TokenKind.EOF):
                raise ParseError(
                    f"loop over {var!r} never closed with 'end do'",
                    do_tok.line,
                    do_tok.column,
                )
            body.append(self._parse_exec())
        return ast.DoStmt(var, lower, upper, step, body, do_tok.line)

    def _parse_touch(self) -> ast.TouchStmt:
        tok = self._expect(TokenKind.NAME, "touch")
        refs = [self._parse_postfix()]
        while self._check(TokenKind.COMMA):
            self._advance()
            refs.append(self._parse_postfix())
        self._end_of_statement()
        return ast.TouchStmt(tuple(refs), tok.line)

    def _parse_access(self) -> ast.AccessStmt:
        tok = self._expect(TokenKind.NAME, "access")
        items: List[Tuple[str, ast.Expr]] = [self._parse_access_item()]
        while self._check(TokenKind.COMMA):
            self._advance()
            items.append(self._parse_access_item())
        self._end_of_statement()
        return ast.AccessStmt(tuple(items), tok.line)

    def _parse_access_item(self) -> Tuple[str, ast.Expr]:
        mode_tok = self._expect(TokenKind.NAME)
        mode = mode_tok.text.lower()
        if mode not in ("load", "store"):
            raise ParseError(
                f"expected 'load' or 'store', found {mode_tok.text!r}",
                mode_tok.line,
                mode_tok.column,
            )
        return mode, self._parse_postfix()

    def _parse_assign(self) -> ast.AssignStmt:
        target = self._parse_postfix()
        eq = self._expect(TokenKind.ASSIGN)
        value = self._parse_expr()
        self._end_of_statement()
        return ast.AssignStmt(target, value, eq.line)

    # -- expressions ------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        left = self._parse_term()
        while self._check(TokenKind.PLUS) or self._check(TokenKind.MINUS):
            op = self._advance()
            right = self._parse_term()
            left = ast.BinOp(op.text, left, right, op.line)
        return left

    def _parse_term(self) -> ast.Expr:
        left = self._parse_unary()
        while self._check(TokenKind.STAR) or self._check(TokenKind.SLASH):
            op = self._advance()
            right = self._parse_unary()
            left = ast.BinOp(op.text, left, right, op.line)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._check(TokenKind.MINUS) or self._check(TokenKind.PLUS):
            op = self._advance()
            return ast.UnOp(op.text, self._parse_unary(), op.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        token = self._peek()
        if token.kind == TokenKind.NUMBER:
            self._advance()
            return ast.Num(token.value, token.line)
        if token.kind == TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if token.kind == TokenKind.NAME:
            self._advance()
            if self._check(TokenKind.LPAREN):
                self._advance()
                args = [self._parse_expr()]
                while self._check(TokenKind.COMMA):
                    self._advance()
                    args.append(self._parse_expr())
                self._expect(TokenKind.RPAREN)
                return ast.Call(token.text, tuple(args), token.line)
            return ast.Name(token.text, token.line)
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def parse_source(source: str) -> ast.ProgramAST:
    """Parse DSL source text to an AST."""
    return Parser(source).parse()
