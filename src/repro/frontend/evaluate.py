"""Executable semantics for the kernel DSL.

The analysis IR deliberately keeps only references; this module instead
interprets the *AST*, actually computing the arithmetic over numpy-backed
arrays.  Uses:

* golden numeric tests for the DSL front end (a Jacobi sweep really
  smooths, a dot product really sums products);
* sanity-checking hand-written kernels before they join the benchmark
  registry;
* demonstrating that padding is a pure layout change — the *values* a
  program computes do not depend on any layout decision.

The evaluator is scalar (one iteration at a time) and intended for small
problem sizes; trace generation for cache studies stays with the fast IR
interpreter.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.errors import LowerError, SimulationError
from repro.frontend import ast
from repro.frontend.parser import parse_source
from repro.ir.types import element_type_from_name

_INTRINSICS = {
    "sqrt": math.sqrt,
    "abs": abs,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "min": min,
    "max": max,
}


class Evaluator:
    """Numeric interpreter for a parsed DSL program."""

    def __init__(self, tree: ast.ProgramAST, params: Optional[Dict[str, int]] = None):
        self.tree = tree
        self.params: Dict[str, int] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        self.lower_bounds: Dict[str, tuple] = {}
        self.scalars: Dict[str, float] = {}
        self._setup(params or {})

    # -- setup ------------------------------------------------------------

    def _const(self, expr: ast.Expr) -> int:
        value = self._eval(expr, {})
        if value != int(value):
            raise LowerError(f"expected integer constant, got {value}")
        return int(value)

    def _setup(self, overrides: Dict[str, int]) -> None:
        for p in self.tree.params:
            self.params[p.ident] = int(overrides.get(p.ident, self._const(p.value)))
        for decl in self.tree.decls:
            dtype = (
                np.int64
                if element_type_from_name(decl.type_name).fortran_name.startswith("integer")
                else np.float64
            )
            for entity in decl.entities:
                if not entity.dims:
                    self.scalars[entity.ident] = 0.0
                    continue
                sizes = []
                lowers = []
                for dim in entity.dims:
                    if dim.size is not None:
                        sizes.append(self._const(dim.size))
                        lowers.append(1)
                    else:
                        lo = self._const(dim.lower)
                        hi = self._const(dim.upper)
                        sizes.append(hi - lo + 1)
                        lowers.append(lo)
                self.arrays[entity.ident] = np.zeros(tuple(sizes), dtype=dtype)
                self.lower_bounds[entity.ident] = tuple(lowers)

    def set_array(self, name: str, values) -> None:
        """Initialize an array's contents (logical layout, column major
        per dimension order of the declaration)."""
        target = self.arrays[name]
        values = np.asarray(values, dtype=target.dtype)
        if values.shape != target.shape:
            raise SimulationError(
                f"{name}: expected shape {target.shape}, got {values.shape}"
            )
        self.arrays[name] = values.copy()

    def array(self, name: str) -> np.ndarray:
        """Current contents of an array."""
        return self.arrays[name]

    def scalar(self, name: str) -> float:
        """Current value of a scalar."""
        return self.scalars[name]

    # -- expression evaluation ------------------------------------------------

    def _index(self, name: str, args, env) -> tuple:
        lowers = self.lower_bounds[name]
        idx = []
        for expr, lo in zip(args, lowers):
            value = int(self._eval(expr, env))
            position = value - lo
            if not 0 <= position < self.arrays[name].shape[len(idx)]:
                raise SimulationError(
                    f"{name} subscript {value} out of bounds"
                )
            idx.append(position)
        return tuple(idx)

    def _eval(self, expr: ast.Expr, env: Dict[str, float]) -> float:
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Name):
            if expr.ident in env:
                return env[expr.ident]
            if expr.ident in self.params:
                return self.params[expr.ident]
            if expr.ident in self.scalars:
                return self.scalars[expr.ident]
            raise LowerError(f"unknown name {expr.ident!r}", expr.line)
        if isinstance(expr, ast.UnOp):
            value = self._eval(expr.operand, env)
            return -value if expr.op == "-" else value
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right
        if isinstance(expr, ast.Call):
            if expr.ident in self.arrays:
                if len(expr.args) != self.arrays[expr.ident].ndim:
                    raise LowerError(f"rank mismatch on {expr.ident!r}", expr.line)
                return float(self.arrays[expr.ident][self._index(expr.ident, expr.args, env)])
            fn = _INTRINSICS.get(expr.ident.lower())
            if fn is None:
                raise LowerError(f"unknown intrinsic {expr.ident!r}", expr.line)
            return fn(*[self._eval(a, env) for a in expr.args])
        raise LowerError(f"cannot evaluate {expr!r}")

    # -- statement execution ----------------------------------------------------

    def run(self) -> None:
        """Execute the whole program body once."""
        self._run_body(self.tree.body, {})

    def _run_body(self, body, env) -> None:
        for node in body:
            if isinstance(node, ast.DoStmt):
                lo = int(self._eval(node.lower, env))
                hi = int(self._eval(node.upper, env))
                step = int(self._eval(node.step, env)) if node.step else 1
                value = lo
                while (value <= hi) if step > 0 else (value >= hi):
                    env[node.var] = value
                    self._run_body(node.body, env)
                    value += step
                env.pop(node.var, None)
            elif isinstance(node, ast.AssignStmt):
                self._assign(node, env)
            elif isinstance(node, (ast.TouchStmt, ast.AccessStmt)):
                continue  # reference-only statements compute nothing
            else:
                raise LowerError(f"cannot execute {node!r}")

    def _assign(self, node: ast.AssignStmt, env) -> None:
        value = self._eval(node.value, env)
        target = node.target
        if isinstance(target, ast.Name):
            if target.ident not in self.scalars:
                raise LowerError(f"assignment to unknown scalar {target.ident!r}")
            self.scalars[target.ident] = value
            return
        if isinstance(target, ast.Call) and target.ident in self.arrays:
            arr = self.arrays[target.ident]
            arr[self._index(target.ident, target.args, env)] = value
            return
        raise LowerError("invalid assignment target")


def evaluate_program(
    source: str, params: Optional[Dict[str, int]] = None
) -> Evaluator:
    """Parse a DSL program and return an initialized evaluator."""
    return Evaluator(parse_source(source), params)
