"""Lowering: DSL AST -> analysis IR.

Responsibilities:

* evaluate ``param`` definitions (optionally overridden by the caller —
  this is how one kernel source serves a whole problem-size sweep);
* resolve declarations to :class:`ArrayDecl`/:class:`ScalarDecl`, folding
  dimension expressions to integers;
* apply directives (``unsafe``, ``parameter_array``, ``local``,
  ``common``) to declaration flags;
* lower subscripts to affine expressions over loop variables — a nested
  reference to a declared rank-1 integer array becomes an
  :class:`IndirectExpr`;
* extract the reference stream from right-hand-side arithmetic in textual
  order (reads), append the left-hand-side write, and drop scalar names
  (registers).  Calls to undeclared names are treated as pure intrinsic
  functions: their arguments are scanned for references.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import LowerError
from repro.frontend import ast
from repro.obs import runtime as obs
from repro.frontend.parser import parse_source
from repro.ir.arrays import ArrayDecl, Dim, ScalarDecl
from repro.ir.expr import AffineExpr, IndirectExpr, Subscript
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.ir.refs import ArrayRef
from repro.ir.stmts import Statement
from repro.ir.types import element_type_from_name
from repro.ir.validate import validate_program


class _Lowerer:
    def __init__(self, tree: ast.ProgramAST, params: Optional[Dict[str, int]]):
        self.tree = tree
        self.params: Dict[str, int] = {}
        self.overrides = dict(params or {})
        self.decls: Dict[str, Union[ArrayDecl, ScalarDecl]] = {}
        self.decl_order: List[str] = []
        self.loop_vars: List[str] = []

    # -- parameters ------------------------------------------------------

    def _eval_const(self, expr: ast.Expr) -> int:
        """Fold an expression over params to an integer constant."""
        affine = self._affine(expr, allow_loop_vars=False)
        if not affine.is_constant:
            raise LowerError(
                f"expression is not constant: {affine}", getattr(expr, "line", 0)
            )
        return affine.const

    def _lower_params(self) -> None:
        for p in self.tree.params:
            if p.ident in self.params:
                raise LowerError(f"parameter {p.ident!r} redefined", p.line)
            if p.ident in self.overrides:
                self.params[p.ident] = int(self.overrides[p.ident])
            else:
                self.params[p.ident] = self._eval_const(p.value)
        unknown = set(self.overrides) - set(self.params)
        if unknown:
            raise LowerError(
                f"override(s) for undeclared parameter(s): {sorted(unknown)}"
            )

    # -- declarations ------------------------------------------------------

    def _lower_decls(self) -> None:
        for decl in self.tree.decls:
            element_type = element_type_from_name(decl.type_name)
            for entity in decl.entities:
                if entity.ident in self.decls:
                    raise LowerError(f"{entity.ident!r} declared twice", entity.line)
                if entity.ident in self.params:
                    raise LowerError(
                        f"{entity.ident!r} is already a parameter", entity.line
                    )
                if entity.dims:
                    dims = [self._lower_dim(d, entity) for d in entity.dims]
                    self.decls[entity.ident] = ArrayDecl(
                        entity.ident, dims, element_type, line=entity.line
                    )
                else:
                    self.decls[entity.ident] = ScalarDecl(
                        entity.ident, element_type, line=entity.line
                    )
                self.decl_order.append(entity.ident)
        self._apply_directives()

    def _lower_dim(self, spec: ast.DimSpec, entity: ast.Entity) -> Dim:
        if spec.size is not None:
            size = self._eval_const(spec.size)
            if size <= 0:
                raise LowerError(
                    f"dimension of {entity.ident!r} must be positive, got {size}",
                    entity.line,
                )
            return Dim(size)
        lower = self._eval_const(spec.lower)
        upper = self._eval_const(spec.upper)
        if upper < lower:
            raise LowerError(
                f"empty dimension {lower}:{upper} for {entity.ident!r}", entity.line
            )
        return Dim(upper - lower + 1, lower)

    def _apply_directives(self) -> None:
        flags: Dict[str, Dict] = {name: {} for name in self.decls}
        for directive in self.tree.directives:
            for name in directive.names:
                if name not in self.decls:
                    raise LowerError(
                        f"directive names undeclared variable {name!r}", directive.line
                    )
                entry = flags[name]
                if directive.kind == "unsafe":
                    entry["storage_association"] = True
                elif directive.kind == "parameter_array":
                    entry["is_parameter"] = True
                elif directive.kind == "local":
                    entry["is_local"] = True
                elif directive.kind == "common":
                    entry["common_block"] = directive.block
                    entry["common_splittable"] = not directive.nosplit
        for name, entry in flags.items():
            if not entry:
                continue
            decl = self.decls[name]
            if isinstance(decl, ScalarDecl):
                raise LowerError(f"directives apply to arrays, {name!r} is a scalar")
            self.decls[name] = ArrayDecl(
                decl.name,
                decl.dims,
                decl.element_type,
                is_parameter=entry.get("is_parameter", False),
                storage_association=entry.get("storage_association", False),
                common_block=entry.get("common_block"),
                common_splittable=entry.get("common_splittable", True),
                is_local=entry.get("is_local", False),
                line=decl.line,
            )

    # -- expressions -> affine --------------------------------------------------

    def _affine(self, expr: ast.Expr, allow_loop_vars: bool = True) -> AffineExpr:
        """Lower an index expression to an affine form (params folded)."""
        if isinstance(expr, ast.Num):
            if isinstance(expr.value, float):
                raise LowerError("float literal in index expression", expr.line)
            return AffineExpr.const_expr(expr.value)
        if isinstance(expr, ast.Name):
            if expr.ident in self.params:
                return AffineExpr.const_expr(self.params[expr.ident])
            if allow_loop_vars:
                return AffineExpr.var(expr.ident)
            raise LowerError(f"{expr.ident!r} is not a parameter", expr.line)
        if isinstance(expr, ast.UnOp):
            inner = self._affine(expr.operand, allow_loop_vars)
            return inner if expr.op == "+" else -inner
        if isinstance(expr, ast.BinOp):
            left = self._affine(expr.left, allow_loop_vars)
            right = self._affine(expr.right, allow_loop_vars)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                if left.is_constant:
                    return right * left.const
                if right.is_constant:
                    return left * right.const
                raise LowerError("product of two variables is not affine", expr.line)
            if expr.op == "/":
                if right.is_constant and right.const != 0 and left.is_constant:
                    if left.const % right.const == 0:
                        return AffineExpr.const_expr(left.const // right.const)
                raise LowerError("division in index expression is not affine", expr.line)
        raise LowerError(f"invalid index expression: {expr!r}", getattr(expr, "line", 0))

    def _subscript(self, expr: ast.Expr) -> Subscript:
        """Lower one subscript; nested calls to rank-1 arrays go indirect."""
        if isinstance(expr, ast.Call) and expr.ident in self.decls:
            decl = self.decls[expr.ident]
            if isinstance(decl, ArrayDecl) and decl.rank == 1 and len(expr.args) == 1:
                return IndirectExpr(expr.ident, self._affine(expr.args[0]))
            raise LowerError(
                f"subscript uses {expr.ident!r}, which is not a rank-1 index array",
                expr.line,
            )
        return self._affine(expr)

    # -- reference extraction ---------------------------------------------------

    def _collect_reads(self, expr: ast.Expr, out: List[ArrayRef]) -> None:
        """Append array reads of an arithmetic expression, textual order."""
        if isinstance(expr, (ast.Num,)):
            return
        if isinstance(expr, ast.Name):
            if expr.ident in self.decls and isinstance(
                self.decls[expr.ident], ArrayDecl
            ):
                raise LowerError(
                    f"array {expr.ident!r} used without subscripts", expr.line
                )
            return  # scalar or loop var: register resident
        if isinstance(expr, ast.UnOp):
            self._collect_reads(expr.operand, out)
            return
        if isinstance(expr, ast.BinOp):
            self._collect_reads(expr.left, out)
            self._collect_reads(expr.right, out)
            return
        if isinstance(expr, ast.Call):
            if expr.ident in self.decls:
                decl = self.decls[expr.ident]
                if isinstance(decl, ScalarDecl):
                    raise LowerError(
                        f"scalar {expr.ident!r} called with arguments", expr.line
                    )
                out.append(self._make_ref(expr, decl, is_write=False))
            else:
                # Intrinsic function: scan arguments for references.
                for arg in expr.args:
                    self._collect_reads(arg, out)
            return
        raise LowerError(f"invalid expression node {expr!r}")

    def _make_ref(self, call: ast.Call, decl: ArrayDecl, is_write: bool) -> ArrayRef:
        if len(call.args) != decl.rank:
            raise LowerError(
                f"{decl.name!r} has rank {decl.rank} but is referenced with "
                f"{len(call.args)} subscripts",
                call.line,
            )
        subs = [self._subscript(a) for a in call.args]
        return ArrayRef(decl.name, subs, is_write=is_write, line=call.line)

    # -- statements -----------------------------------------------------------------

    def _lower_assign(self, node: ast.AssignStmt) -> Statement:
        refs: List[ArrayRef] = []
        self._collect_reads(node.value, refs)
        target = node.target
        if isinstance(target, ast.Name):
            # Scalar assignment: only the RHS reads reach memory.
            if target.ident in self.decls and isinstance(
                self.decls[target.ident], ArrayDecl
            ):
                raise LowerError(
                    f"array {target.ident!r} assigned without subscripts", node.line
                )
            return Statement(refs, line=node.line)
        if isinstance(target, ast.Call) and target.ident in self.decls:
            decl = self.decls[target.ident]
            if isinstance(decl, ArrayDecl):
                # Index-array loads feeding the write's own subscripts are
                # reads too; IndirectExpr handles them inside the ref.
                refs.append(self._make_ref(target, decl, is_write=True))
                return Statement(refs, line=node.line)
        raise LowerError("assignment target must be a scalar or array reference", node.line)

    def _lower_touch(self, node: ast.TouchStmt) -> Statement:
        refs: List[ArrayRef] = []
        for expr in node.refs:
            self._collect_reads(expr, refs)
        return Statement(refs, line=node.line)

    def _lower_access(self, node: ast.AccessStmt) -> Statement:
        refs: List[ArrayRef] = []
        for mode, expr in node.items:
            if not isinstance(expr, ast.Call) or expr.ident not in self.decls:
                raise LowerError(
                    "access items must be references to declared arrays", node.line
                )
            decl = self.decls[expr.ident]
            if not isinstance(decl, ArrayDecl):
                raise LowerError(f"{expr.ident!r} is not an array", node.line)
            refs.append(self._make_ref(expr, decl, is_write=(mode == "store")))
        return Statement(refs, line=node.line)

    def _lower_body(self, nodes: List[ast.Node]) -> List:
        out = []
        for node in nodes:
            if isinstance(node, ast.DoStmt):
                lower = self._affine(node.lower)
                upper = self._affine(node.upper)
                step = self._eval_const(node.step) if node.step else 1
                body = self._lower_body(node.body)
                out.append(
                    Loop(node.var, lower, upper, body, step=step, line=node.line)
                )
            elif isinstance(node, ast.AssignStmt):
                out.append(self._lower_assign(node))
            elif isinstance(node, ast.TouchStmt):
                out.append(self._lower_touch(node))
            elif isinstance(node, ast.AccessStmt):
                out.append(self._lower_access(node))
            else:
                raise LowerError(f"unsupported statement {node!r}")
        return out

    # -- entry point -------------------------------------------------------------

    def lower(self, suite: str = "", description: str = "") -> Program:
        self._lower_params()
        self._lower_decls()
        body = self._lower_body(self.tree.body)
        prog = Program(
            self.tree.name,
            [self.decls[name] for name in self.decl_order],
            body,
            source_lines=self.tree.source_lines,
            suite=suite,
            description=description,
        )
        validate_program(prog)
        return prog


def lower_ast(
    tree: ast.ProgramAST,
    params: Optional[Dict[str, int]] = None,
    suite: str = "",
    description: str = "",
) -> Program:
    """Lower a parsed AST to IR."""
    return _Lowerer(tree, params).lower(suite, description)


def parse_program(
    source: str,
    params: Optional[Dict[str, int]] = None,
    suite: str = "",
    description: str = "",
) -> Program:
    """Parse and lower DSL source in one call.

    ``params`` overrides ``param`` definitions in the source, enabling
    problem-size sweeps from a single kernel file.
    """
    with obs.span("frontend.parse"):
        tree = parse_source(source)
    with obs.span("frontend.lower"):
        prog = lower_ast(tree, params, suite, description)
    obs.counter_add(
        "repro_frontend_programs_total", 1,
        "programs parsed and lowered through the DSL front end",
        suite=suite or "unspecified",
    )
    return prog
