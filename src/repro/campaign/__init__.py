"""Crash-resumable distributed campaign orchestration.

A **campaign** is the paper's whole evaluation cross-product — benchmark
selectors x cache-geometry grid x padding heuristics — written down as a
declarative JSON spec, compiled into a deterministic content-addressed
work plan, and executed by a coordinator that shards items across leased
workers from the warm :class:`~repro.engine.pool.WorkerPool`.

Robustness is the design center:

* every simulation result is committed to a durable SQLite **disk tier**
  (:mod:`repro.campaign.disktier`) under a content-addressed key with a
  per-row checksum — corrupt rows are quarantined, never trusted and
  never fatal;
* worker **leases** carry deadlines and liveness heartbeats, so a
  crashed or hung worker's items are re-leased with backoff instead of
  lost;
* the coordinator **journals** every state transition (leased /
  completed / failed / quarantined) through the existing JSONL journal,
  and a killed campaign resumes from journal + disk tier with zero
  duplicated simulations;
* ``--allow-partial`` degrades gracefully to partial results when items
  keep failing.

Entry points: ``repro campaign run/resume/status`` on the CLI and
``POST /v1/campaign`` on the analysis service.  See docs/CAMPAIGNS.md.
"""

from repro.campaign.coordinator import CampaignReport, Coordinator
from repro.campaign.disktier import DiskTier
from repro.campaign.plan import CampaignPlan, WorkItem, compile_plan
from repro.campaign.spec import CampaignPolicy, CampaignSpec, parse_spec
from repro.campaign.state import CampaignState, replay_journal

__all__ = [
    "CampaignPlan",
    "CampaignPolicy",
    "CampaignReport",
    "CampaignSpec",
    "CampaignState",
    "Coordinator",
    "DiskTier",
    "WorkItem",
    "compile_plan",
    "parse_spec",
    "replay_journal",
]
