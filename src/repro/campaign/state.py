"""Campaign state, replayed from the journal.

The coordinator journals every item state transition through the same
JSONL journal the engine uses, so the campaign's entire history is a
fold over journal events::

    campaign_start    {campaign, plan, items, name}
    item_leased       {item, attempt, worker}
    item_released     {item, reason}        # lease broken: re-lease later
    item_completed    {item, status, attempts, duration}
    item_failed       {item, error, attempts}
    item_quarantined  {item, reason}        # corrupt artifact dropped
    campaign_resume   {campaign, plan, committed, quarantined}
    campaign_finish   {campaign, completed, failed, duration}

:func:`replay_journal` rebuilds a :class:`CampaignState` from those
events, tolerating the torn tail line a SIGKILL leaves behind (via
:func:`repro.engine.journal.read_journal`).  A lease with no later
terminal event means the coordinator died mid-item — replay files it
back under ``pending``, which is exactly the resume semantics: the disk
tier (not the lease) decides what is already done.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CampaignError

#: item states a replay can produce
PENDING = "pending"
LEASED = "leased"
COMPLETED = "completed"
FAILED = "failed"


@dataclass
class CampaignState:
    """Mutable fold state for one campaign's journal events."""

    campaign_id: str
    plan_digest: Optional[str] = None
    name: Optional[str] = None
    total_items: int = 0
    items: Dict[str, str] = field(default_factory=dict)  # item_id -> state
    statuses: Dict[str, str] = field(default_factory=dict)  # terminal status
    resumes: int = 0
    releases: int = 0
    quarantines: int = 0
    finished: bool = False

    def counts(self) -> Dict[str, int]:
        """Item tally by state, plus the never-journaled remainder."""
        tally = {PENDING: 0, LEASED: 0, COMPLETED: 0, FAILED: 0}
        for state in self.items.values():
            tally[state] += 1
        untouched = max(0, self.total_items - len(self.items))
        tally[PENDING] += untouched
        return tally

    def state_of(self, item_id: str) -> str:
        """The item's replayed state; untouched items are pending."""
        return self.items.get(item_id, PENDING)

    def describe(self) -> Dict[str, object]:
        """JSON-safe progress summary (CLI status, serve polling)."""
        counts = self.counts()
        return {
            "campaign": self.campaign_id,
            "name": self.name,
            "plan": self.plan_digest,
            "items": self.total_items,
            "pending": counts[PENDING],
            "leased": counts[LEASED],
            "completed": counts[COMPLETED],
            "failed": counts[FAILED],
            "resumes": self.resumes,
            "releases": self.releases,
            "quarantines": self.quarantines,
            "finished": self.finished,
        }


def replay_journal(
    events: List[dict], campaign_id: Optional[str] = None
) -> CampaignState:
    """Fold journal events into the state of one campaign.

    ``campaign_id`` selects which campaign to replay when the journal
    interleaves several; by default the journal's first ``campaign_start``
    wins.  Raises :class:`~repro.errors.CampaignError` when the requested
    campaign never started in this journal.
    """
    state: Optional[CampaignState] = None
    for event in events:
        kind = event.get("event")
        if kind == "campaign_start":
            found = event.get("campaign")
            if campaign_id is None:
                campaign_id = found
            if found != campaign_id:
                continue
            if state is None:
                state = CampaignState(
                    campaign_id=campaign_id,
                    plan_digest=event.get("plan"),
                    name=event.get("name"),
                    total_items=int(event.get("items", 0)),
                )
            continue
        if state is None:
            continue
        if kind == "campaign_resume":
            if event.get("campaign") == campaign_id:
                state.resumes += 1
                # broken leases from the dead coordinator are void
                for item_id, item_state in list(state.items.items()):
                    if item_state == LEASED:
                        state.items[item_id] = PENDING
            continue
        if kind == "campaign_finish":
            if event.get("campaign") == campaign_id:
                state.finished = True
            continue
        item_id = event.get("item")
        if not item_id:
            continue
        if kind == "item_leased":
            if state.items.get(item_id) not in (COMPLETED, FAILED):
                state.items[item_id] = LEASED
        elif kind == "item_released":
            if state.items.get(item_id) == LEASED:
                state.items[item_id] = PENDING
            state.releases += 1
        elif kind == "item_completed":
            state.items[item_id] = COMPLETED
            state.statuses[item_id] = event.get("status", "ok")
        elif kind == "item_failed":
            state.items[item_id] = FAILED
            state.statuses[item_id] = "failed"
        elif kind == "item_quarantined":
            # the committed artifact was condemned: the item must re-run
            state.items[item_id] = PENDING
            state.statuses.pop(item_id, None)
            state.quarantines += 1
    if state is None:
        raise CampaignError(
            f"journal has no campaign_start"
            + (f" for campaign {campaign_id!r}" if campaign_id else "")
        )
    return state
