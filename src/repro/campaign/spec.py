"""Declarative campaign specs and their strict validation.

A campaign spec is a JSON object describing a sweep cross-product plus
the execution policy it should run under::

    {"name": "paper-sweep",
     "benchmarks": ["jacobi", "dot", "suite:kernel", "category:stencil"],
     "heuristics": ["original", "pad"],
     "caches": [{"size": "16K", "line": 32, "assoc": 1},
                {"size": "32K", "line": 32, "assoc": 2}],
     "sizes": [null, 256],
     "m_lines": [4],
     "seed": 12345,
     "guard": {"mode": "warn", "epsilon_pct": 0.5},
     "policy": {"retries": 2, "timeout_s": 60.0,
                "backoff_base_s": 0.25, "backoff_cap_s": 30.0,
                "fallback": true}}

Validation mirrors the analysis service's schemas: unknown fields are
rejected (a typo'd field silently ignored is a debugging tarpit), every
field is type-checked one at a time, and every rejection is a
:class:`~repro.errors.UsageError` naming the offending field.

Benchmark *selectors* expand against the registry: a plain name selects
one benchmark, ``suite:<name>`` every benchmark of a suite,
``category:<name>`` every benchmark of a category, and ``all`` the whole
registry.  Expansion is deterministic (registry order, first mention
wins), so the same spec always compiles to the same plan — the property
the content-addressed campaign id depends on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.errors import UsageError

#: hard ceiling on the expanded cross-product, whatever the spec asks for
MAX_CAMPAIGN_ITEMS = 65536

_SPEC_FIELDS = (
    "name", "benchmarks", "heuristics", "caches", "sizes", "m_lines",
    "seed", "guard", "policy",
)
_POLICY_FIELDS = (
    "retries", "timeout_s", "backoff_base_s", "backoff_cap_s", "fallback",
    "tier",
)


@dataclass(frozen=True)
class CampaignPolicy:
    """Per-item retry/timeout/backoff policy for one campaign."""

    retries: int = 2               # extra lease attempts after the first
    timeout_s: float = 120.0       # per-lease wall-clock deadline
    backoff_base_s: float = 0.25   # 0 disables waiting (tests)
    backoff_cap_s: float = 30.0
    fallback: bool = True          # degrade to the reference simulator
    tier: str = "sim"              # analytic tier-0 policy workers apply

    def to_record(self) -> Dict[str, object]:
        """JSON-safe form, part of the canonical (addressed) spec."""
        return {
            "retries": self.retries,
            "timeout_s": self.timeout_s,
            "backoff_base_s": self.backoff_base_s,
            "backoff_cap_s": self.backoff_cap_s,
            "fallback": self.fallback,
            "tier": self.tier,
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: resolved cross-product plus policy."""

    benchmarks: Tuple[str, ...]
    heuristics: Tuple[str, ...]
    caches: Tuple[CacheConfig, ...]
    sizes: Tuple[Optional[int], ...] = (None,)
    m_lines: Tuple[int, ...] = (4,)
    seed: int = 12345
    name: str = "campaign"
    guard: Optional[Dict[str, object]] = None  # GuardConfig record
    policy: CampaignPolicy = field(default_factory=CampaignPolicy)

    def canonical(self) -> Dict[str, object]:
        """JSON-safe, fully-resolved form — the content that is addressed.

        Two specs that expand to the same work under the same policy
        canonicalize identically (selector spelling does not matter);
        any change that alters the work changes the campaign id.
        """
        return {
            "schema": 1,
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "heuristics": list(self.heuristics),
            "caches": [
                {"size": c.size_bytes, "line": c.line_bytes,
                 "assoc": c.associativity}
                for c in self.caches
            ],
            "sizes": list(self.sizes),
            "m_lines": list(self.m_lines),
            "seed": self.seed,
            "guard": self.guard,
            "policy": self.policy.to_record(),
        }

    @property
    def campaign_id(self) -> str:
        """Content address of the campaign (sha256 of the canonical spec)."""
        blob = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        ).encode()
        return hashlib.sha256(blob).hexdigest()[:12]

    @property
    def item_count(self) -> int:
        """Size of the cross-product this spec expands to."""
        return (
            len(self.benchmarks) * len(self.heuristics) * len(self.caches)
            * len(self.sizes) * len(self.m_lines)
        )


# -- field-level checkers ----------------------------------------------------


def _require_dict(body, what: str) -> dict:
    if not isinstance(body, dict):
        raise UsageError(
            f"{what}: expected a JSON object, got {type(body).__name__}"
        )
    return body


def _reject_unknown(body: dict, known: Tuple[str, ...], what: str) -> None:
    unknown = sorted(set(body) - set(known))
    if unknown:
        raise UsageError(
            f"{what}: unknown field(s) {', '.join(map(repr, unknown))}; "
            f"known: {', '.join(known)}"
        )


def _string_list(body: dict, name: str, required: bool = False) -> Tuple[str, ...]:
    if name not in body:
        if required:
            raise UsageError(f"missing required field {name!r}")
        return ()
    raw = body[name]
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, list) or not all(isinstance(x, str) for x in raw):
        raise UsageError(f"{name}: expected a list of strings")
    if required and not raw:
        raise UsageError(f"{name}: must not be empty")
    return tuple(raw)


def _number(body: dict, name: str, default, minimum=None, integer=False):
    if name not in body or body[name] is None:
        return default
    value = body[name]
    ok = (
        isinstance(value, int) if integer else isinstance(value, (int, float))
    ) and not isinstance(value, bool)
    if not ok:
        kind = "an integer" if integer else "a number"
        raise UsageError(f"{name}: expected {kind}, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise UsageError(f"{name}: must be >= {minimum}, got {value}")
    return value


def _byte_size(value, what: str) -> int:
    if isinstance(value, bool):
        raise UsageError(f"{what}: expected a byte size, got a boolean")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        text = value.strip().upper()
        factor = 1
        if text.endswith("K"):
            factor, text = 1024, text[:-1]
        elif text.endswith("M"):
            factor, text = 1024 * 1024, text[:-1]
        try:
            return int(text) * factor
        except ValueError:
            pass
    raise UsageError(
        f"{what}: expected a byte size like 16384, '16K' or '1M', "
        f"got {value!r}"
    )


# -- selector expansion ------------------------------------------------------


def resolve_benchmarks(selectors: Tuple[str, ...]) -> Tuple[str, ...]:
    """Expand benchmark selectors against the registry, in stable order."""
    from repro.bench.suites import ALL_SPECS

    by_name = {spec.name: spec for spec in ALL_SPECS}
    resolved = []
    seen = set()

    def add(name: str) -> None:
        if name not in seen:
            seen.add(name)
            resolved.append(name)

    for selector in selectors:
        if selector == "all":
            for spec in ALL_SPECS:
                add(spec.name)
        elif selector.startswith("suite:"):
            suite = selector[len("suite:"):]
            matches = [s for s in ALL_SPECS if s.suite == suite]
            if not matches:
                known = sorted({s.suite for s in ALL_SPECS})
                raise UsageError(
                    f"benchmarks: unknown suite {suite!r}; known: {known}"
                )
            for spec in matches:
                add(spec.name)
        elif selector.startswith("category:"):
            category = selector[len("category:"):]
            matches = [s for s in ALL_SPECS if s.category == category]
            if not matches:
                known = sorted({s.category for s in ALL_SPECS})
                raise UsageError(
                    f"benchmarks: unknown category {category!r}; known: {known}"
                )
            for spec in matches:
                add(spec.name)
        elif selector in by_name:
            add(selector)
        else:
            raise UsageError(
                f"benchmarks: unknown selector {selector!r} (a benchmark "
                "name, 'suite:<name>', 'category:<name>', or 'all')"
            )
    return tuple(resolved)


# -- spec parsing ------------------------------------------------------------


def _parse_caches(body: dict) -> Tuple[CacheConfig, ...]:
    raw = body.get("caches")
    if raw is None:
        raw = [{}]
    if isinstance(raw, dict):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        raise UsageError("caches: expected a non-empty list of geometries")
    caches = []
    for index, item in enumerate(raw):
        what = f"caches[{index}]"
        item = _require_dict(item, what)
        _reject_unknown(item, ("size", "line", "assoc"), what)
        assoc = item.get("assoc", 1)
        if isinstance(assoc, bool) or not isinstance(assoc, int):
            raise UsageError(f"{what}.assoc: expected an integer")
        caches.append(
            CacheConfig(
                size_bytes=_byte_size(item.get("size", "16K"), f"{what}.size"),
                line_bytes=_byte_size(item.get("line", 32), f"{what}.line"),
                associativity=assoc,
            )
        )
    return tuple(caches)


def _parse_sizes(body: dict) -> Tuple[Optional[int], ...]:
    raw = body.get("sizes")
    if raw is None:
        return (None,)
    if not isinstance(raw, list) or not raw:
        raise UsageError(
            "sizes: expected a non-empty list of problem sizes "
            "(null = the benchmark's default)"
        )
    sizes = []
    for index, value in enumerate(raw):
        if value is None:
            sizes.append(None)
            continue
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise UsageError(f"sizes[{index}]: expected a positive integer or null")
        sizes.append(value)
    return tuple(sizes)


def _parse_m_lines(body: dict) -> Tuple[int, ...]:
    raw = body.get("m_lines")
    if raw is None:
        return (4,)
    if isinstance(raw, int) and not isinstance(raw, bool):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        raise UsageError("m_lines: expected an integer or a non-empty list")
    out = []
    for index, value in enumerate(raw):
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise UsageError(f"m_lines[{index}]: expected a positive integer")
        out.append(value)
    return tuple(out)


def _parse_guard(body: dict) -> Optional[Dict[str, object]]:
    raw = body.get("guard")
    if raw is None:
        return None
    raw = _require_dict(raw, "guard")
    _reject_unknown(raw, ("mode", "epsilon_pct", "budget"), "guard")
    mode = raw.get("mode", "warn")
    if mode not in ("warn", "strict"):
        raise UsageError(f"guard.mode: expected 'warn' or 'strict', got {mode!r}")
    epsilon = _number(raw, "epsilon_pct", 0.5, minimum=0.0)
    budget = raw.get("budget")
    if budget is not None:
        budget = _byte_size(budget, "guard.budget")
    from repro.guard.config import GuardConfig

    return GuardConfig(
        mode=mode, epsilon_pct=float(epsilon), budget_bytes=budget
    ).to_record()


def _parse_policy(body: dict) -> CampaignPolicy:
    raw = body.get("policy")
    if raw is None:
        return CampaignPolicy()
    raw = _require_dict(raw, "policy")
    _reject_unknown(raw, _POLICY_FIELDS, "policy")
    fallback = raw.get("fallback", True)
    if not isinstance(fallback, bool):
        raise UsageError("policy.fallback: expected a boolean")
    from repro.experiments.runner import Runner

    tier = raw.get("tier", "sim")
    if tier not in Runner.PREDICT_MODES:
        raise UsageError(
            f"policy.tier: expected one of {list(Runner.PREDICT_MODES)}"
        )
    return CampaignPolicy(
        retries=_number(raw, "retries", 2, minimum=0, integer=True),
        timeout_s=float(_number(raw, "timeout_s", 120.0, minimum=0.001)),
        backoff_base_s=float(_number(raw, "backoff_base_s", 0.25, minimum=0.0)),
        backoff_cap_s=float(_number(raw, "backoff_cap_s", 30.0, minimum=0.0)),
        fallback=fallback,
        tier=tier,
    )


def parse_spec(body) -> CampaignSpec:
    """Validate one decoded campaign spec into a :class:`CampaignSpec`."""
    body = _require_dict(body, "campaign spec")
    _reject_unknown(body, _SPEC_FIELDS, "campaign spec")
    name = body.get("name", "campaign")
    if not isinstance(name, str) or not name:
        raise UsageError("name: expected a non-empty string")
    benchmarks = resolve_benchmarks(
        _string_list(body, "benchmarks", required=True)
    )
    heuristics = _string_list(body, "heuristics", required=True)
    from repro.experiments.runner import HEURISTICS

    for heuristic in heuristics:
        if heuristic not in HEURISTICS:
            raise UsageError(
                f"heuristics: unknown {heuristic!r}; known: "
                f"{sorted(HEURISTICS)}"
            )
    spec = CampaignSpec(
        benchmarks=benchmarks,
        heuristics=heuristics,
        caches=_parse_caches(body),
        sizes=_parse_sizes(body),
        m_lines=_parse_m_lines(body),
        seed=_number(body, "seed", 12345, minimum=0, integer=True),
        name=name,
        guard=_parse_guard(body),
        policy=_parse_policy(body),
    )
    if spec.item_count > MAX_CAMPAIGN_ITEMS:
        raise UsageError(
            f"campaign spec expands to {spec.item_count} items, over the "
            f"{MAX_CAMPAIGN_ITEMS}-item ceiling"
        )
    return spec


def spec_from_file(path) -> CampaignSpec:
    """Load and validate a campaign spec from a JSON file."""
    try:
        with open(path) as fh:
            body = json.load(fh)
    except OSError as exc:
        raise UsageError(f"cannot read campaign spec {path!r}: {exc}") from None
    except ValueError as exc:
        raise UsageError(f"{path}: malformed JSON: {exc}") from None
    return parse_spec(body)
