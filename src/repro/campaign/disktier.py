"""Durable SQLite result tier for campaigns.

The campaign coordinator commits every finished simulation here *before*
journaling it complete, which makes the tier the source of truth on
resume: a row that exists and passes its checksum will never be
re-simulated, and anything else — a half-written row, a bit-flipped
value, a truncated database — is quarantined and re-run, never trusted
and never fatal.

Layout::

    results(key TEXT PRIMARY KEY, value TEXT, sum TEXT, created_ts REAL)
    quarantine(key TEXT, value TEXT, sum TEXT, reason TEXT, ts REAL)

``value`` is the canonical JSON of an engine ``pack_record`` payload;
``sum`` is the same CRC32-of-canonical-JSON checksum the crash-safe
store uses, so both tiers condemn corruption the same way.  Writes
commit per ``put`` (SQLite's atomic commit is the durability boundary);
a database file that cannot even be opened is renamed to
``<name>.corrupt-<n>`` and a fresh tier starts, mirroring
:class:`~repro.engine.store.CrashSafeStore` quarantine.  ``strict=True``
raises :class:`~repro.errors.StoreCorruption` instead.

The tier is protected by an internal lock: the coordinator thread owns
the write side while serve status threads read progress counts.
"""

from __future__ import annotations

import json
import logging
import pathlib
import sqlite3
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.store import checksum
from repro.errors import StoreCorruption
from repro.obs import runtime as obs

log = logging.getLogger(__name__)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key        TEXT PRIMARY KEY,
    value      TEXT NOT NULL,
    sum        TEXT NOT NULL,
    created_ts REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    key    TEXT NOT NULL,
    value  TEXT,
    sum    TEXT,
    reason TEXT NOT NULL,
    ts     REAL NOT NULL
);
"""


class DiskTier:
    """Checksummed, durably-committed SQLite key/value result store."""

    def __init__(self, path, strict: bool = False):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.strict = strict
        #: where a whole corrupt database went, if that happened
        self.quarantined_file: Optional[pathlib.Path] = None
        self._lock = threading.Lock()
        self._conn = self._open()

    # -- connection / whole-file quarantine ---------------------------------

    def _open(self) -> sqlite3.Connection:
        try:
            return self._connect()
        except sqlite3.DatabaseError as exc:
            if self.strict:
                raise StoreCorruption(f"{self.path}: {exc}") from None
            dest = self._quarantine_path()
            try:
                self.path.rename(dest)
                self.quarantined_file = dest
            except OSError:  # pragma: no cover - racing deletes
                dest = None
            log.warning(
                "disk tier %s unreadable (%s); quarantined to %s and "
                "starting fresh", self.path, exc, dest,
            )
            obs.counter_add(
                "repro_campaign_tier_quarantined_total", 1,
                "disk-tier artifacts quarantined, by scope", scope="file",
            )
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), check_same_thread=False)
        conn.executescript(_SCHEMA)
        conn.commit()
        # a cheap integrity probe: a truncated/overwritten file often opens
        # fine and only fails on first real read
        conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return conn

    def _quarantine_path(self) -> pathlib.Path:
        n = 0
        while True:
            candidate = self.path.with_name(f"{self.path.name}.corrupt-{n}")
            if not candidate.exists():
                return candidate
            n += 1

    # -- read side ----------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The stored value for ``key``; corrupt rows quarantine to None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value, sum FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                obs.counter_add(
                    "repro_campaign_tier_lookups_total", 1,
                    "disk-tier lookups, by outcome", outcome="miss",
                )
                return None
            value = self._decode(key, row[0], row[1])
            obs.counter_add(
                "repro_campaign_tier_lookups_total", 1,
                "disk-tier lookups, by outcome",
                outcome="hit" if value is not None else "quarantined",
            )
            return value

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]

    def scan(self) -> Dict[str, Any]:
        """Every valid (key, value); corrupt rows are quarantined en route.

        This is the resume recovery scan: its result set is exactly the
        work the coordinator will *not* re-simulate.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, value, sum FROM results ORDER BY key"
            ).fetchall()
            good: Dict[str, Any] = {}
            for key, raw, digest in rows:
                value = self._decode(key, raw, digest)
                if value is not None:
                    good[key] = value
            return good

    def quarantine_rows(self) -> List[Tuple[str, str]]:
        """(key, reason) for every quarantined row, oldest first."""
        with self._lock:
            return [
                (key, reason)
                for key, reason in self._conn.execute(
                    "SELECT key, reason FROM quarantine ORDER BY ts, key"
                )
            ]

    # -- write side ----------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Durably commit one value (the coordinator's commit point)."""
        blob = json.dumps(value, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results (key, value, sum, created_ts) "
                "VALUES (?, ?, ?, ?)",
                (key, blob, checksum(value), time.time()),
            )
            self._conn.commit()

    def close(self) -> None:
        """Close the underlying connection (pending writes are committed)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "DiskTier":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- row-level quarantine -------------------------------------------------

    def _decode(self, key: str, raw: str, digest: str) -> Optional[Any]:
        """Validate one row; bad rows move to the quarantine table.

        Caller holds the lock.
        """
        try:
            value = json.loads(raw)
        except ValueError:
            return self._condemn(key, raw, digest, "invalid JSON")
        if checksum(value) != digest:
            return self._condemn(key, raw, digest, "checksum mismatch")
        return value

    def _condemn(self, key: str, raw, digest, reason: str) -> None:
        if self.strict:
            raise StoreCorruption(f"{self.path}: row {key!r}: {reason}")
        self._conn.execute(
            "INSERT INTO quarantine (key, value, sum, reason, ts) "
            "VALUES (?, ?, ?, ?, ?)",
            (key, raw, digest, reason, time.time()),
        )
        self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
        self._conn.commit()
        log.warning(
            "disk tier %s: quarantined row %s (%s)", self.path, key, reason
        )
        obs.counter_add(
            "repro_campaign_tier_quarantined_total", 1,
            "disk-tier artifacts quarantined, by scope", scope="row",
        )
        return None
