"""Lease-based campaign coordinator.

The coordinator executes a :class:`~repro.campaign.plan.CampaignPlan`
across engine worker subprocesses, either leased warm from a
:class:`~repro.engine.pool.WorkerPool` or owned for the campaign's
lifetime.  It differs from :class:`~repro.engine.core.ExperimentEngine`
in what it promises: the engine promises one outcome per request in one
process's lifetime; the coordinator promises a campaign that *survives
its own death*.

Mechanics:

* every item dispatch takes a **lease** — journaled ``item_leased``,
  with a deadline of ``policy.timeout_s`` from now; a worker that blows
  the deadline or dies (liveness is swept every loop tick) gets its item
  journaled ``item_released`` and re-leased after deterministic backoff;
* a finished item is committed to the :class:`~repro.campaign.disktier.
  DiskTier` **before** it is journaled ``item_completed`` — so the tier,
  not the journal, is the source of truth, and a crash between the two
  costs nothing on resume;
* resume replays the journal (tolerating the torn tail a SIGKILL
  leaves), rescans the tier — quarantining corrupt rows and journaling
  them ``item_quarantined`` — and re-runs exactly the items with no
  valid committed artifact: zero duplicated simulations, byte-identical
  results;
* items that exhaust retries degrade to the reference simulator (both
  engines are exact, so resumed and fault-free campaigns stay
  byte-identical) and, failing that, are journaled ``item_failed``;
  whether that fails the campaign is ``allow_partial``'s call.
"""

from __future__ import annotations

import contextlib
import heapq
import os
import pathlib
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional

from repro.campaign.disktier import DiskTier
from repro.campaign.plan import CampaignPlan, WorkItem
from repro.engine.core import (
    _mp_context,
    _owned_workers,
    _Worker,
    validate_payload,
)
from repro.engine.faults import CampaignFaults, choose_corruption, unit_interval
from repro.engine.journal import RunJournal, read_journal
from repro.engine.store import checksum  # noqa: F401  (re-export for tests)
from repro.errors import CampaignError
from repro.experiments.runner import pack_record, unpack_record
from repro.obs import runtime as obs

TIER_FILENAME = "campaign.db"
JOURNAL_FILENAME = "journal.jsonl"
RESULTS_FILENAME = "results.json"

_FALLBACK_TIMEOUT_FACTOR = 4.0  # the reference simulator is slower


@dataclass
class ItemOutcome:
    """Terminal state of one work item in this coordinator run."""

    item: WorkItem
    status: str              # ok | analytic | degraded | cached | failed
    stats: Optional[object] = None  # CacheStats when successful
    attempts: int = 0
    duration: float = 0.0
    error: Optional[str] = None


@dataclass
class CampaignReport:
    """What one :meth:`Coordinator.run` accomplished."""

    campaign_id: str
    plan_digest: str
    resumed: bool
    duration: float
    outcomes: Dict[str, ItemOutcome] = field(default_factory=dict)
    quarantined: int = 0

    @property
    def completed(self) -> int:
        return sum(
            1 for o in self.outcomes.values() if o.status != "failed"
        )

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "cached")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "failed")

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def results_document(self) -> Dict[str, object]:
        """The deterministic results artifact (``results.json``).

        Contains only content that is identical between a fault-free
        campaign and a killed-and-resumed one: the campaign/plan
        addresses and each item's simulation statistics.  Attempt
        counts, durations and degraded/cached provenance live in the
        journal, not here — they legitimately differ across runs.
        """
        results = {}
        for item_id in sorted(self.outcomes):
            outcome = self.outcomes[item_id]
            if outcome.stats is None:
                continue
            import dataclasses

            results[item_id] = {
                "key": outcome.item.key,
                "stats": dataclasses.asdict(outcome.stats),
            }
        return {
            "campaign": self.campaign_id,
            "plan": self.plan_digest,
            "results": results,
        }

    def describe(self) -> Dict[str, object]:
        """A JSON-safe summary of the run (journal / serve status body)."""
        return {
            "campaign": self.campaign_id,
            "plan": self.plan_digest,
            "resumed": self.resumed,
            "items": len(self.outcomes),
            "completed": self.completed,
            "cached": self.cached,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "duration": round(self.duration, 6),
        }


@dataclass
class _ItemTask:
    index: int
    item: WorkItem
    simulator: str = "fast"
    attempts: int = 0           # lease attempts in the current stage
    total_attempts: int = 0     # across stages (fault plan / jitter index)
    started_at: float = 0.0
    total_time: float = 0.0
    fallback_used: bool = False
    last_error: Optional[str] = None

    @property
    def key(self) -> str:
        return self.item.key


class Coordinator:
    """Run (or resume) one campaign inside a work directory.

    ``workdir`` accumulates the campaign's durable state: the SQLite
    disk tier (``campaign.db``), the JSONL journal (``journal.jsonl``)
    and, after a successful run, the deterministic ``results.json``.
    ``pool`` is an optional :class:`~repro.engine.pool.WorkerPool` to
    lease warm workers from; without one the coordinator owns its
    workers for the campaign's duration.  ``faults`` accepts either a
    :class:`~repro.engine.faults.CampaignFaults` record or a unified
    :class:`~repro.chaos.ChaosSchedule` (the ``--chaos`` config), which
    is narrowed to its campaign-level faults here.
    """

    def __init__(
        self,
        plan: CampaignPlan,
        workdir,
        pool=None,
        jobs: int = 4,
        allow_partial: bool = False,
        faults: Optional[CampaignFaults] = None,
        journal_fsync: bool = False,
    ):
        self.plan = plan
        self.workdir = pathlib.Path(workdir)
        self.pool = pool
        self.jobs = max(1, jobs)
        self.allow_partial = allow_partial
        if faults is not None and hasattr(faults, "campaign_faults"):
            faults = faults.campaign_faults()  # a unified ChaosSchedule
        self.faults = faults
        self.journal_fsync = journal_fsync
        self._commits = 0  # coordinator-kill fault trigger

    # -- paths ---------------------------------------------------------------

    @property
    def tier_path(self) -> pathlib.Path:
        return self.workdir / TIER_FILENAME

    @property
    def journal_path(self) -> pathlib.Path:
        return self.workdir / JOURNAL_FILENAME

    @property
    def results_path(self) -> pathlib.Path:
        return self.workdir / RESULTS_FILENAME

    # -- public API ----------------------------------------------------------

    def run(self, resume: bool = False) -> CampaignReport:
        """Execute the plan to completion; resumable after any crash.

        ``resume=True`` requires a journal from a previous run of the
        *same* plan (digest-checked) and re-runs only uncommitted work.
        Raises :class:`~repro.errors.CampaignError` when the campaign
        cannot start (bad resume) or finishes with failed items and
        ``allow_partial`` is off.
        """
        started = time.monotonic()
        self.workdir.mkdir(parents=True, exist_ok=True)
        if resume:
            self._check_resumable()
        with contextlib.ExitStack() as stack:
            journal = stack.enter_context(
                RunJournal(self.journal_path, fsync=self.journal_fsync)
            )
            tier = stack.enter_context(DiskTier(self.tier_path))
            committed, quarantined = self._recover(tier, journal)
            if resume:
                journal.emit(
                    "campaign_resume",
                    campaign=self.plan.campaign_id,
                    plan=self.plan.digest,
                    committed=len(committed),
                    quarantined=quarantined,
                )
                obs.counter_add(
                    "repro_campaign_resumes_total", 1,
                    "campaign resume operations",
                )
            else:
                journal.emit(
                    "campaign_start",
                    campaign=self.plan.campaign_id,
                    plan=self.plan.digest,
                    items=len(self.plan.items),
                    name=self.plan.spec.name,
                )
            report = CampaignReport(
                campaign_id=self.plan.campaign_id,
                plan_digest=self.plan.digest,
                resumed=resume,
                duration=0.0,
                quarantined=quarantined,
            )
            for item in self.plan.items:
                record = committed.get(item.key)
                if record is not None:
                    stats, _status = record
                    report.outcomes[item.item_id] = ItemOutcome(
                        item=item, status="cached", stats=stats
                    )
            pending = [
                item for item in self.plan.items
                if item.item_id not in report.outcomes
            ]
            if pending:
                with obs.span(
                    "campaign.execute",
                    campaign=self.plan.campaign_id, items=len(pending),
                ):
                    self._execute(pending, report, tier, journal)
            report.duration = round(time.monotonic() - started, 6)
            journal.emit(
                "campaign_finish",
                campaign=self.plan.campaign_id,
                completed=report.completed,
                failed=report.failed,
                duration=report.duration,
            )
        self._write_results(report)
        if report.failed and not self.allow_partial:
            raise CampaignError(
                f"campaign {self.plan.campaign_id}: {report.failed} of "
                f"{len(self.plan.items)} items failed "
                "(pass --allow-partial to accept partial results)"
            )
        return report

    # -- recovery ------------------------------------------------------------

    def _check_resumable(self) -> None:
        from repro.campaign.state import replay_journal

        if not self.journal_path.exists():
            raise CampaignError(
                f"nothing to resume: no journal at {self.journal_path}"
            )
        state = replay_journal(
            read_journal(self.journal_path), self.plan.campaign_id
        )
        if state.plan_digest != self.plan.digest:
            raise CampaignError(
                f"refusing to resume campaign {self.plan.campaign_id}: "
                f"journal was written for plan {state.plan_digest}, the "
                f"spec now compiles to plan {self.plan.digest} "
                "(the spec changed since the original launch)"
            )

    def _recover(self, tier: DiskTier, journal) -> tuple:
        """Scan the tier for committed work; quarantine what fails.

        Returns ``(committed, quarantined)`` where ``committed`` maps
        run-request keys to unpacked ``(stats, status)`` and
        ``quarantined`` counts artifacts condemned during this scan —
        corrupt rows dropped by the tier plus rows whose payload shape
        no longer unpacks.  Every condemned item is journaled so replay
        knows it went back to pending.
        """
        snapshot = tier.scan()
        committed: Dict[str, tuple] = {}
        quarantined = 0
        quarantine_keys = {key for key, _reason in tier.quarantine_rows()}
        for item in self.plan.items:
            record = snapshot.get(item.key)
            if record is not None:
                try:
                    committed[item.key] = unpack_record(record)
                    continue
                except (TypeError, KeyError):
                    journal.emit(
                        "item_quarantined", item=item.item_id,
                        reason="unpackable record",
                    )
                    quarantined += 1
                    continue
            if item.key in quarantine_keys:
                journal.emit(
                    "item_quarantined", item=item.item_id,
                    reason="checksum mismatch",
                )
                quarantined += 1
        return committed, quarantined

    # -- execution -----------------------------------------------------------

    def _execute(self, items: List[WorkItem], report, tier, journal) -> None:
        policy = self.plan.spec.policy
        seed = self.plan.spec.seed
        guard_record = self.plan.spec.guard
        tasks = [
            _ItemTask(index=i, item=item) for i, item in enumerate(items)
        ]
        stack = contextlib.ExitStack()
        if self.pool is not None:
            ctx = self.pool.ctx
            workers = stack.enter_context(
                self.pool.leased(min(self.jobs, len(tasks)))
            )
        else:
            ctx = _mp_context()
            workers = stack.enter_context(
                _owned_workers(ctx, min(self.jobs, len(tasks)))
            )
        ready: List[_ItemTask] = list(tasks)
        delayed: List = []  # heap of (ready_time, tiebreak, task)
        seq = 0
        remaining = len(tasks)

        def finish(task: _ItemTask, status, stats=None, error=None) -> None:
            nonlocal remaining
            report.outcomes[task.item.item_id] = ItemOutcome(
                item=task.item, status=status, stats=stats,
                attempts=task.total_attempts,
                duration=round(task.total_time, 6),
                error=error,
            )
            remaining -= 1

        def commit(task: _ItemTask, stats, status: str) -> None:
            # Commit order is the resume invariant: the durable tier
            # first, the journal second.  A crash between the two is
            # recovered by the tier scan, never by trusting the journal.
            tier.put(task.key, pack_record(stats, status))
            self._commits += 1
            obs.counter_add(
                "repro_campaign_commits_total", 1,
                "item results durably committed to the disk tier",
            )
            self._maybe_kill_coordinator()
            journal.emit(
                "item_completed", item=task.item.item_id, status=status,
                attempts=task.total_attempts,
                duration=round(task.total_time, 6),
            )
            finish(task, status, stats=stats)

        def release(task: _ItemTask, reason: str, error: str) -> None:
            nonlocal seq
            now = time.monotonic()
            task.total_time += now - task.started_at
            task.last_error = error
            journal.emit(
                "item_released", item=task.item.item_id, reason=reason,
                attempt=task.total_attempts,
            )
            obs.counter_add(
                "repro_campaign_items_released_total", 1,
                "leases broken before completion, by reason", reason=reason,
            )
            if task.attempts <= policy.retries:
                delay = _backoff(policy, seed, task)
                obs.counter_add(
                    "repro_campaign_retries_total", 1,
                    "item re-leases scheduled after a broken lease",
                )
                seq += 1
                heapq.heappush(delayed, (now + delay, seq, task))
            elif policy.fallback and not task.fallback_used:
                task.fallback_used = True
                task.simulator = "reference"
                task.attempts = 0
                obs.counter_add(
                    "repro_campaign_fallbacks_total", 1,
                    "items degraded to the reference simulator",
                )
                seq += 1
                heapq.heappush(delayed, (now, seq, task))
            else:
                journal.emit(
                    "item_failed", item=task.item.item_id,
                    error=task.last_error, attempts=task.total_attempts,
                )
                finish(task, "failed", error=task.last_error)

        def handle_result(worker: _Worker, msg) -> None:
            task = worker.task
            worker.task = None
            worker.deadline = float("inf")
            if msg[0] == "error":
                release(task, "error", str(msg[2]))
                return
            payload, digest = msg[2], msg[3]
            if len(msg) > 4 and msg[4] is not None:
                try:
                    obs.merge_snapshot(msg[4])
                except Exception:  # never fail an item over metrics
                    pass
            stats = validate_payload(payload, digest)
            if stats is None:
                release(
                    task, "corrupt_payload",
                    "result payload failed checksum",
                )
                return
            task.total_time += time.monotonic() - task.started_at
            worker_guard = msg[5] if len(msg) > 5 else None
            worker_tier = msg[6] if len(msg) > 6 else None
            self._journal_guard(journal, task, worker_guard)
            status = (
                "rolled_back"
                if worker_guard and worker_guard.get("status") == "rolled_back"
                else "degraded" if task.simulator == "reference"
                else "analytic" if worker_tier == "analytic"
                else "ok"
            )
            commit(task, stats, status)

        try:
            while remaining > 0:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    ready.append(heapq.heappop(delayed)[2])
                for worker in workers:
                    if worker.task is None and ready:
                        task = ready.pop(0)
                        if not self._lease(worker, task, journal, guard_record):
                            self._replace(workers, worker, ctx)
                            release(
                                task, "dispatch",
                                "worker unreachable at dispatch",
                            )
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    if delayed:
                        time.sleep(
                            min(0.25, max(0.001, delayed[0][0] - time.monotonic()))
                        )
                        continue
                    break  # pragma: no cover - no work left but remaining>0
                horizon = min(w.deadline for w in busy)
                if delayed:
                    horizon = min(horizon, delayed[0][0])
                wait_for = min(0.5, max(0.005, horizon - time.monotonic()))
                for conn in _conn_wait([w.conn for w in busy], timeout=wait_for):
                    worker = next((w for w in workers if w.conn is conn), None)
                    if worker is None or worker.task is None:
                        continue  # replaced or already handled
                    try:
                        msg = worker.conn.recv()
                    except (EOFError, OSError):
                        task = worker.task
                        code = worker.proc.exitcode
                        self._replace(workers, worker, ctx)
                        release(
                            task, "crash",
                            f"worker died (exit code {code}) holding the lease",
                        )
                        continue
                    except Exception as exc:
                        # torn pipe write: a frame arrived but does not
                        # decode — same containment as a worker crash
                        task = worker.task
                        self._replace(workers, worker, ctx)
                        release(
                            task, "crash",
                            "worker shipped an undecodable message "
                            f"({type(exc).__name__}: torn write?)",
                        )
                        continue
                    handle_result(worker, msg)
                # heartbeat + deadline sweep: a lease is only as live as
                # its worker process and its deadline
                now = time.monotonic()
                for worker in list(workers):
                    if worker.task is None:
                        continue
                    if now >= worker.deadline:
                        task = worker.task
                        budget = worker.deadline - task.started_at
                        self._replace(workers, worker, ctx)
                        release(
                            task, "timeout",
                            f"lease deadline ({budget:.1f}s) exceeded; "
                            "worker killed",
                        )
                    elif not worker.proc.is_alive():
                        task = worker.task
                        self._replace(workers, worker, ctx)
                        release(
                            task, "crash",
                            "worker heartbeat lost (process dead)",
                        )
        finally:
            stack.close()

    def _lease(self, worker: _Worker, task: _ItemTask, journal, guard) -> bool:
        policy = self.plan.spec.policy
        task.attempts += 1
        task.total_attempts += 1
        timeout = policy.timeout_s * (
            _FALLBACK_TIMEOUT_FACTOR if task.simulator == "reference" else 1.0
        )
        injected = None
        worker_faults = self.faults.worker if self.faults else None
        if worker_faults is not None:
            injected = worker_faults.decide(task.key, task.total_attempts)
        fault = None
        if injected == "timeout":
            fault = ("timeout", timeout * 3 + 1.0)
        elif injected == "layout":
            fault = (
                "layout",
                choose_corruption(
                    worker_faults.seed, task.key, task.total_attempts
                ),
            )
        elif injected == "slow":
            fault = ("slow", worker_faults.slow_s)
        elif injected is not None:
            fault = (injected, None)
        task.started_at = time.monotonic()
        worker.task = task
        worker.deadline = task.started_at + timeout
        journal.emit(
            "item_leased", item=task.item.item_id,
            attempt=task.total_attempts, worker=worker.proc.pid,
            simulator=task.simulator,
            **({"injected": injected} if injected else {}),
        )
        obs.counter_add(
            "repro_campaign_items_leased_total", 1,
            "item leases granted to workers",
        )
        collect = obs.is_enabled()
        try:
            worker.conn.send(
                (
                    "task", task.index, task.item.request, task.simulator,
                    fault, collect, guard, "auto", policy.tier,
                )
            )
        except (BrokenPipeError, OSError):  # pragma: no cover - instant death
            worker.task = None
            worker.deadline = float("inf")
            return False
        return True

    @staticmethod
    def _journal_guard(journal, task: _ItemTask, guard_record) -> None:
        if not guard_record:
            return
        for violation in guard_record.get("violations", ()):
            journal.emit(
                "guard_violation", item=task.item.item_id, run=task.key,
                **violation,
            )
        if guard_record.get("status") == "rolled_back":
            journal.emit(
                "guard_rollback", item=task.item.item_id, run=task.key,
            )

    def _replace(self, workers: List[_Worker], dead: _Worker, ctx) -> None:
        dead.kill()
        workers[workers.index(dead)] = _Worker(ctx, slot=dead.slot)

    def _maybe_kill_coordinator(self) -> None:
        """Chaos hook: die unceremoniously after the Nth durable commit.

        Exits *between* the tier commit and its journal event — the most
        adversarial instant, because the journal now under-reports what
        the tier holds.  Resume must reconcile from the tier.
        """
        faults = self.faults
        if (
            faults is not None
            and faults.coordinator_kill_after is not None
            and self._commits >= faults.coordinator_kill_after
        ):
            os._exit(137)

    def _write_results(self, report: CampaignReport) -> None:
        import json

        tmp = self.results_path.with_name(self.results_path.name + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(report.results_document(), fh, sort_keys=True, indent=1)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.results_path)


def _backoff(policy, seed: int, task: _ItemTask) -> float:
    if policy.backoff_base_s <= 0:
        return 0.0
    raw = min(
        policy.backoff_cap_s,
        policy.backoff_base_s * 2 ** (task.attempts - 1),
    )
    jitter = 0.5 + unit_interval(seed, task.key, task.total_attempts)
    return raw * jitter
