"""Compile a campaign spec into a deterministic, content-addressed plan.

The plan is the contract between a coordinator run and any later resume:
the same spec always compiles to the same ordered list of
:class:`WorkItem` s, each addressed by the sha256 of its run-request key
(the same key the engine and the stores use).  The plan carries its own
digest over the ordered item ids, so a resume can detect a spec that
drifted since the original launch instead of silently simulating a
different cross-product under the old campaign id.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.campaign.spec import CampaignSpec
from repro.errors import CampaignError
from repro.experiments.runner import RunRequest, request_key


@dataclass(frozen=True)
class WorkItem:
    """One simulation in a campaign: a resolved request plus its address."""

    item_id: str        # sha256(run-request key)[:16] — the lease/commit id
    key: str            # the engine/store run-request key
    request: RunRequest

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary (status listings, journal context)."""
        r = self.request
        return {
            "item": self.item_id,
            "benchmark": r.program,
            "heuristic": r.heuristic,
            "size": r.size,
            "cache": f"{r.cache.size_bytes}/{r.cache.line_bytes}"
                     f"/{r.cache.associativity}",
            "m_lines": r.m_lines,
        }


@dataclass(frozen=True)
class CampaignPlan:
    """The full ordered work list for one campaign."""

    campaign_id: str
    spec: CampaignSpec
    items: Tuple[WorkItem, ...]

    @property
    def digest(self) -> str:
        """Content address over the ordered item ids.

        Stored in the ``campaign_start`` journal event; a resume whose
        recompiled plan digest differs is refused (the spec changed, so
        the journal describes different work).
        """
        hasher = hashlib.sha256()
        hasher.update(self.campaign_id.encode())
        for item in self.items:
            hasher.update(b"\0")
            hasher.update(item.item_id.encode())
        return hasher.hexdigest()[:16]

    def item(self, item_id: str) -> Optional[WorkItem]:
        """The plan's work item with this id, or None."""
        return self._by_id().get(item_id)

    def _by_id(self) -> Dict[str, WorkItem]:
        cache = getattr(self, "_id_cache", None)
        if cache is None:
            cache = {item.item_id: item for item in self.items}
            object.__setattr__(self, "_id_cache", cache)
        return cache


def item_id_for(key: str) -> str:
    """Content address of one work item (sha256 of its run-request key)."""
    return hashlib.sha256(key.encode()).hexdigest()[:16]


def compile_plan(spec: CampaignSpec) -> CampaignPlan:
    """Expand a spec's cross-product into an ordered, addressed plan.

    Expansion order is fixed (benchmarks, then sizes, heuristics, caches,
    m_lines — each in spec order) so item indices are stable and two
    compilations of one spec are byte-identical.  Duplicate requests
    (possible when a selector expansion overlaps an explicit name) keep
    the first occurrence.
    """
    from repro.bench.suites import get_spec

    items = []
    seen = set()
    for benchmark in spec.benchmarks:
        max_outer = get_spec(benchmark).max_outer
        for size in spec.sizes:
            for heuristic in spec.heuristics:
                for cache in spec.caches:
                    for m_lines in spec.m_lines:
                        request = RunRequest(
                            program=benchmark,
                            size=size,
                            heuristic=heuristic,
                            cache=cache,
                            pad_cache=cache,
                            m_lines=m_lines,
                            max_outer=max_outer,
                            seed=spec.seed,
                        )
                        key = request_key(request)
                        if key in seen:
                            continue
                        seen.add(key)
                        items.append(
                            WorkItem(
                                item_id=item_id_for(key),
                                key=key,
                                request=request,
                            )
                        )
    if not items:
        raise CampaignError(
            f"campaign {spec.name!r} compiled to an empty plan"
        )
    return CampaignPlan(
        campaign_id=spec.campaign_id, spec=spec, items=tuple(items)
    )
