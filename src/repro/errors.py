"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one type.  Subsystems refine it:
IR construction errors, DSL front-end errors, analysis errors, layout and
simulation errors.

The CLI maps these classes to process exit codes (most specific first;
see :data:`repro.cli.EXIT_CODES`):

=====  ==========================  =========================================
code   class                       meaning
=====  ==========================  =========================================
0      —                           success
1      —                           partial results (some runs failed)
2      :class:`ReproError`         any library error not listed below
3      :class:`UsageError`         impossible invocation (bad path/flags)
4      :class:`EngineError`        the execution engine could not complete
5      :class:`RunTimeout`         a run exceeded its wall-clock budget
6      :class:`WorkerCrashed`      a worker process died mid-run
7      :class:`StoreCorruption`    unreadable/mismatched persistent results
8      :class:`GuardError`         strict-mode guardrail violation
9      :class:`LintError`          ``repro lint`` findings at/above
                                   ``--fail-on``, or a lint misconfiguration
10     :class:`CampaignError`      a campaign failed to start/resume, or
                                   finished with failures and no
                                   ``--allow-partial``
11     :class:`OptimizeError`      search-based layout optimization was
                                   misconfigured or could not produce a
                                   guard-clean layout
=====  ==========================  =========================================
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed IR: bad declarations, references, or loop structure."""


class ValidationError(IRError):
    """A structural validation pass rejected a program."""


class FrontendError(ReproError):
    """Base class for DSL front-end errors (lexing, parsing, lowering)."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line or column:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """The tokenizer encountered an invalid character or literal."""


class ParseError(FrontendError):
    """The parser encountered an unexpected token."""


class LowerError(FrontendError):
    """AST-to-IR lowering failed (unknown name, non-affine subscript, ...)."""


class AnalysisError(ReproError):
    """A program analysis was asked something it cannot answer."""


class NotUniformError(AnalysisError):
    """A reference pair is not uniformly generated (no constant distance)."""


class PredictError(AnalysisError):
    """The analytic miss predictor was required but had to bail out."""


class LayoutError(ReproError):
    """Inconsistent memory layout (overlap, missing variable, bad pad)."""


class SimulationError(ReproError):
    """Cache or trace simulation was misconfigured."""


class ConfigError(ReproError):
    """An invalid configuration value (cache geometry, machine model, ...)."""


class ObsError(ReproError):
    """Invalid use of the metrics/tracing subsystem (bad metric name,
    decreasing counter, mismatched histogram buckets, ...)."""


class UsageError(ReproError):
    """A CLI invocation that cannot possibly work (bad path, bad flag
    combination); reported as one line, never a traceback."""


class GuardError(ReproError):
    """Base class for transformation-guardrail failures."""


class GuardViolationError(GuardError):
    """A guard checker rejected a transformed layout in strict mode.

    Carries the individual :class:`~repro.guard.config.GuardViolation`
    records on ``violations`` for programmatic inspection.
    """

    def __init__(self, message: str, violations=()):
        super().__init__(message)
        self.violations = tuple(violations)


class LintError(ReproError):
    """Static analysis (``repro lint``) failure: bad rule selection or
    any other misuse of the lint subsystem."""


class LintFindingsError(LintError):
    """``repro lint`` produced findings at or above the ``--fail-on``
    threshold.  Carries the offending :class:`~repro.lint.findings.Finding`
    records on ``findings`` for programmatic inspection."""

    def __init__(self, message: str, findings=()):
        super().__init__(message)
        self.findings = tuple(findings)


class OptimizeError(ReproError):
    """Search-based layout optimization (``pad --optimize``) failure:
    bad search knobs (beam width, candidate budget, objective) or any
    other misuse of :mod:`repro.optimize`."""


class ServeError(ReproError):
    """Base class for analysis-service (``repro serve``) failures."""


class QueueFullError(ServeError):
    """The service's bounded admission queue is full (HTTP 429): the
    client should back off and retry."""


class PayloadTooLarge(ServeError):
    """A request body exceeded the service's size ceiling (HTTP 413)."""


class CampaignError(ReproError):
    """A distributed campaign could not start, resume, or finish.

    Raised for spec/plan mismatches on resume, a campaign whose items
    failed without ``--allow-partial``, and any other misuse of the
    campaign orchestration layer (:mod:`repro.campaign`)."""


class EngineError(ReproError):
    """The fault-tolerant execution engine could not complete a run."""


class RunTimeout(EngineError):
    """A run exceeded its wall-clock budget and its worker was killed."""


class WorkerCrashed(EngineError):
    """A worker process died mid-run (segfault, OOM kill, hard exit)."""


class StoreCorruption(EngineError):
    """The persistent result store held unreadable or checksum-mismatched data."""
