"""Trace persistence.

Traces are the interface between the interpreter and the cache simulator;
being able to dump them makes results auditable and lets external tools
(dinero-style simulators, custom analyses) consume the same streams.
Format: a compressed ``.npz`` with two arrays, ``addresses`` (int64 byte
addresses) and ``writes`` (bool), plus a tiny metadata record.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.ir.program import Program
from repro.layout.layout import MemoryLayout
from repro.trace.env import DataEnv
from repro.trace.interpreter import trace_program

PathLike = Union[str, Path]


def save_trace(
    path: PathLike,
    prog: Program,
    layout: MemoryLayout,
    env: Optional[DataEnv] = None,
    jit: str = "auto",
) -> int:
    """Trace a program and write the stream to ``path``; returns the
    number of accesses written."""
    addr_parts = []
    write_parts = []
    for addrs, writes in trace_program(prog, layout, env, jit=jit):
        addr_parts.append(addrs)
        write_parts.append(writes)
    if addr_parts:
        addresses = np.concatenate(addr_parts)
        writes = np.concatenate(write_parts)
    else:
        addresses = np.zeros(0, dtype=np.int64)
        writes = np.zeros(0, dtype=bool)
    meta = json.dumps(
        {
            "program": prog.name,
            "accesses": int(len(addresses)),
            "format": "repro-trace-v1",
        }
    )
    np.savez_compressed(
        str(path),
        addresses=addresses,
        writes=writes,
        meta=np.frombuffer(meta.encode(), dtype=np.uint8),
    )
    return int(len(addresses))


def load_trace(path: PathLike) -> Tuple[np.ndarray, np.ndarray, dict]:
    """Load a trace; returns (addresses, writes, metadata)."""
    with np.load(str(path)) as data:
        try:
            addresses = data["addresses"]
            writes = data["writes"]
            meta = json.loads(bytes(data["meta"]).decode())
        except KeyError as exc:
            raise SimulationError(f"not a repro trace file: missing {exc}") from exc
    if meta.get("format") != "repro-trace-v1":
        raise SimulationError(f"unknown trace format {meta.get('format')!r}")
    if len(addresses) != len(writes):
        raise SimulationError("corrupt trace: array length mismatch")
    return addresses, writes, meta


def replay_trace(path: PathLike, simulator) -> "object":
    """Feed a saved trace through a cache simulator; returns its stats."""
    addresses, writes, _ = load_trace(path)
    chunk = 1 << 16
    for start in range(0, len(addresses), chunk):
        simulator.access_chunk(
            addresses[start : start + chunk], writes[start : start + chunk]
        )
    return simulator.stats
