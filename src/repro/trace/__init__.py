"""Trace generation: execute loop nests into exact address streams."""

from repro.trace.env import DataEnv
from repro.trace.io import load_trace, replay_trace, save_trace
from repro.trace.interpreter import (
    TraceInterpreter,
    simulate,
    trace_addresses,
    trace_program,
    truncate_outer_loops,
)

__all__ = [
    "DataEnv",
    "load_trace",
    "replay_trace",
    "save_trace",
    "TraceInterpreter",
    "simulate",
    "trace_addresses",
    "trace_program",
    "truncate_outer_loops",
]
