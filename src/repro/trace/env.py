"""Data environment for trace generation.

Most references are affine and need no data values — only *addresses*
matter to a cache.  Indirect references (the paper's IRR benchmark,
relaxation over an irregular mesh) read subscripts out of index arrays, so
the interpreter needs their contents.  :class:`DataEnv` holds those
contents and can synthesize reproducible random index arrays on demand.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import SimulationError
from repro.ir.program import Program


class DataEnv:
    """Holds index-array contents keyed by array name.

    Values are *logical subscript values* (in the coordinate system of the
    array being indexed, i.e. respecting its lower bound), stored densely
    from each index array's own lower bound.
    """

    def __init__(self, seed: int = 12345):
        self.seed = seed
        self._values: Dict[str, np.ndarray] = {}

    def set_values(self, name: str, values) -> None:
        """Provide explicit contents for an index array."""
        self._values[name] = np.asarray(values, dtype=np.int64)

    def has(self, name: str) -> bool:
        """True when contents for ``name`` are present."""
        return name in self._values

    def values(self, name: str) -> np.ndarray:
        """Contents of an index array."""
        try:
            return self._values[name]
        except KeyError:
            raise SimulationError(
                f"no data for index array {name!r}; call set_values or "
                f"populate_defaults first"
            ) from None

    def populate_defaults(self, prog: Program) -> None:
        """Fill every referenced index array with reproducible random values.

        Each index array's value range is derived from the dimensions it
        subscripts: for ``X(IDX(i))`` the values span X's first dimension.
        When the range length equals the index array's length a permutation
        is used (the irregular-mesh idiom: every node visited once in
        scattered order); otherwise uniform random values (the histogram
        idiom, e.g. bucket sort keys).  Seeded for reproducibility; each
        array gets an independent stream.
        """
        ranges = _index_value_ranges(prog)
        for offset, name in enumerate(prog.referenced_index_arrays()):
            if name in self._values:
                continue
            decl = prog.array(name)
            lower, upper = ranges.get(name, (decl.dims[0].lower, decl.dims[0].upper))
            rng = np.random.default_rng(self.seed + offset)
            span = upper - lower + 1
            if span == decl.num_elements:
                values = rng.permutation(span).astype(np.int64) + lower
            else:
                values = rng.integers(
                    lower, upper + 1, size=decl.num_elements, dtype=np.int64
                )
            self._values[name] = values


def _index_value_ranges(prog: Program) -> dict:
    """Intersection of the subscript ranges each index array must satisfy."""
    from repro.ir.expr import IndirectExpr

    ranges = {}
    for ref in prog.refs():
        decl = prog.array(ref.array)
        for sub, dim in zip(ref.subscripts, decl.dims):
            if not isinstance(sub, IndirectExpr):
                continue
            lower, upper = ranges.get(sub.array, (dim.lower, dim.upper))
            ranges[sub.array] = (max(lower, dim.lower), min(upper, dim.upper))
    return ranges
