"""Trace interpreter: execute a program's loop nests into address chunks.

The interpreter walks the loop structure with concrete index values and
emits, in exact program order, the byte address and read/write flag of
every array reference.  Addresses come from the :class:`MemoryLayout`
(base addresses + padded strides), so the same program traced under two
layouts yields the padded and unpadded address streams the experiments
compare.

Performance: outer loops run in Python but any loop whose body is purely
statements (the innermost loops of all kernels) is vectorized — each
reference's address across the whole iteration range is one numpy
expression, and per-iteration interleaving is a reshape.  Chunks are
yielded once they reach ``chunk_target`` accesses.

Indirect references ``X(IDX(i))`` emit the load of ``IDX(i)`` followed by
the gathered access to ``X``, matching what the hardware would do.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.ir.expr import IndirectExpr
from repro.ir.loops import BodyNode, Loop
from repro.ir.program import Program
from repro.ir.refs import ArrayRef
from repro.ir.stmts import Statement
from repro.layout.layout import MemoryLayout
from repro.obs import runtime as obs
from repro.trace.env import DataEnv

Chunk = Tuple[np.ndarray, np.ndarray]

_CHUNK_SIZE_BUCKETS = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


class _RefPlan:
    """Precomputed addressing data for one reference under one layout."""

    __slots__ = ("ref", "base", "strides", "lowers", "subplans", "is_write")

    def __init__(self, ref: ArrayRef, layout: MemoryLayout):
        decl = layout.prog.array(ref.array)
        self.ref = ref
        self.base = layout.base(ref.array)
        self.strides = layout.strides(ref.array)
        self.lowers = decl.lower_bounds
        self.is_write = ref.is_write
        # Per-dimension: (kind, subscript, stride, lower bound, upper bound).
        subplans = []
        for sub, stride, dim in zip(ref.subscripts, self.strides, decl.dims):
            kind = "indirect" if isinstance(sub, IndirectExpr) else "affine"
            subplans.append((kind, sub, stride, dim.lower, dim.upper))
        self.subplans = tuple(subplans)

    @property
    def slot_count(self) -> int:
        """Trace slots per execution: 1, plus 1 per indirect subscript."""
        return 1 + sum(1 for kind, *_ in self.subplans if kind == "indirect")


class TraceInterpreter:
    """Executes a program under a layout, yielding address chunks."""

    def __init__(
        self,
        prog: Program,
        layout: MemoryLayout,
        env: Optional[DataEnv] = None,
        chunk_target: int = 1 << 16,
    ):
        if layout.prog is not prog and layout.prog.name != prog.name:
            raise SimulationError("layout was built for a different program")
        self.prog = prog
        self.layout = layout
        self.env = env or DataEnv()
        self.env.populate_defaults(prog)
        self.chunk_target = int(chunk_target)
        self._plans: Dict[int, _RefPlan] = {}
        self._pending_addrs: List[np.ndarray] = []
        self._pending_writes: List[np.ndarray] = []
        self._pending_count = 0

    # -- plan cache --------------------------------------------------------

    def _plan(self, ref: ArrayRef) -> _RefPlan:
        key = id(ref)
        plan = self._plans.get(key)
        if plan is None:
            plan = _RefPlan(ref, self.layout)
            self._plans[key] = plan
        return plan

    # -- public API ------------------------------------------------------

    def trace(self) -> Iterator[Chunk]:
        """Yield (addresses, write-flags) chunks in exact program order."""
        self._pending_addrs = []
        self._pending_writes = []
        self._pending_count = 0
        env: Dict[str, int] = {}
        yield from self._run_body(self.prog.body, env)
        if self._pending_count:
            yield self._flush()

    def count_accesses(self) -> int:
        """Total accesses the trace would contain (runs the interpreter)."""
        return sum(len(addrs) for addrs, _ in self.trace())

    # -- execution --------------------------------------------------------

    def _run_body(self, body: Sequence[BodyNode], env: Dict[str, int]) -> Iterator[Chunk]:
        for node in body:
            if isinstance(node, Statement):
                self._emit_statement_once(node, env)
                if self._pending_count >= self.chunk_target:
                    yield self._flush()
            elif node.is_innermost:
                self._emit_vector_loop(node, env)
                if self._pending_count >= self.chunk_target:
                    yield self._flush()
            else:
                yield from self._run_loop(node, env)

    def _run_loop(self, loop: Loop, env: Dict[str, int]) -> Iterator[Chunk]:
        lo = loop.lower.evaluate(env)
        hi = loop.upper.evaluate(env)
        step = loop.step
        value = lo
        while (value <= hi) if step > 0 else (value >= hi):
            env[loop.var] = value
            yield from self._run_body(loop.body, env)
            value += step
        env.pop(loop.var, None)

    # -- vectorized innermost loop ----------------------------------------

    def _emit_vector_loop(self, loop: Loop, env: Dict[str, int]) -> None:
        lo = loop.lower.evaluate(env)
        hi = loop.upper.evaluate(env)
        step = loop.step
        if step > 0:
            count = max(0, (hi - lo) // step + 1)
        else:
            count = max(0, (lo - hi) // (-step) + 1)
        if count == 0:
            return
        values = lo + step * np.arange(count, dtype=np.int64)

        columns: List[np.ndarray] = []
        write_flags: List[bool] = []
        for stmt in loop.body:
            for ref in stmt.refs:
                self._append_ref_columns(
                    self._plan(ref), loop.var, values, env, columns, write_flags
                )
        if not columns:
            return
        matrix = np.stack(columns, axis=1)
        addrs = matrix.reshape(-1)
        writes = np.tile(np.asarray(write_flags, dtype=bool), count)
        self._push(addrs, writes)

    def _append_ref_columns(
        self,
        plan: _RefPlan,
        var: str,
        values: np.ndarray,
        env: Dict[str, int],
        columns: List[np.ndarray],
        write_flags: List[bool],
    ) -> None:
        """Append this ref's address column(s) for a vectorized loop.

        Indirect subscripts contribute an extra column for the index-array
        load that precedes the main access.
        """
        total = np.full_like(values, plan.base)
        for kind, sub, stride, lower, upper in plan.subplans:
            if kind == "affine":
                coef = sub.coeff(var)
                const = sub.const + sum(
                    c * env[v] for v, c in sub.coeffs.items() if v != var
                )
                total = total + (const - lower) * stride + coef * stride * values
            else:
                idx_values, idx_addrs = self._indirect_values(
                    sub, var, values, env
                )
                if len(idx_values) and (
                    idx_values.min() < lower or idx_values.max() > upper
                ):
                    raise SimulationError(
                        f"index array {sub.array!r} yields subscript outside "
                        f"[{lower}, {upper}] for {plan.ref}"
                    )
                columns.append(idx_addrs)
                write_flags.append(False)
                total = total + (idx_values - lower) * stride
        columns.append(total)
        write_flags.append(plan.is_write)

    def _indirect_values(
        self,
        sub: IndirectExpr,
        var: str,
        values: np.ndarray,
        env: Dict[str, int],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(gathered subscript values, addresses of the index-array loads)."""
        idx_decl = self.prog.array(sub.array)
        inner = sub.inner
        coef = inner.coeff(var)
        const = inner.const + sum(
            c * env[v] for v, c in inner.coeffs.items() if v != var
        )
        positions = const + coef * values - idx_decl.dims[0].lower
        data = self.env.values(sub.array)
        if positions.min() < 0 or positions.max() >= len(data):
            raise SimulationError(
                f"index array {sub.array!r} subscript out of range "
                f"[{positions.min()}, {positions.max()}]"
            )
        gathered = data[positions]
        idx_base = self.layout.base(sub.array)
        idx_stride = self.layout.strides(sub.array)[0]
        idx_addrs = idx_base + positions * idx_stride
        return gathered, idx_addrs

    # -- scalar (non-vectorized) statement execution -------------------------

    def _emit_statement_once(self, stmt: Statement, env: Dict[str, int]) -> None:
        addrs: List[int] = []
        writes: List[bool] = []
        for ref in stmt.refs:
            plan = self._plan(ref)
            total = plan.base
            for kind, sub, stride, lower, upper in plan.subplans:
                if kind == "affine":
                    total += (sub.evaluate(env) - lower) * stride
                else:
                    inner_val = sub.inner.evaluate(env)
                    idx_decl = self.prog.array(sub.array)
                    position = inner_val - idx_decl.dims[0].lower
                    data = self.env.values(sub.array)
                    if not 0 <= position < len(data):
                        raise SimulationError(
                            f"index array {sub.array!r} subscript {inner_val} "
                            f"out of range"
                        )
                    value = int(data[position])
                    if not lower <= value <= upper:
                        raise SimulationError(
                            f"index array {sub.array!r} yields subscript "
                            f"{value} outside [{lower}, {upper}] for {plan.ref}"
                        )
                    idx_base = self.layout.base(sub.array)
                    idx_stride = self.layout.strides(sub.array)[0]
                    addrs.append(idx_base + position * idx_stride)
                    writes.append(False)
                    total += (value - lower) * stride
            addrs.append(total)
            writes.append(plan.is_write)
        self._push(np.asarray(addrs, dtype=np.int64), np.asarray(writes, dtype=bool))

    # -- chunk management -------------------------------------------------

    def _push(self, addrs: np.ndarray, writes: np.ndarray) -> None:
        self._pending_addrs.append(addrs)
        self._pending_writes.append(writes)
        self._pending_count += len(addrs)

    def _flush(self) -> Chunk:
        addrs = np.concatenate(self._pending_addrs)
        writes = np.concatenate(self._pending_writes)
        self._pending_addrs = []
        self._pending_writes = []
        self._pending_count = 0
        if obs.is_enabled():
            obs.counter_add(
                "repro_trace_chunks_total", 1, "address chunks emitted"
            )
            obs.counter_add(
                "repro_trace_addresses_total", len(addrs),
                "addresses generated by the trace interpreter",
            )
            obs.observe(
                "repro_trace_chunk_size", len(addrs),
                "accesses per emitted chunk", buckets=_CHUNK_SIZE_BUCKETS,
            )
        return addrs, writes


def trace_program(
    prog: Program,
    layout: MemoryLayout,
    env: Optional[DataEnv] = None,
    chunk_target: int = 1 << 16,
    jit: str = "auto",
) -> Iterator[Chunk]:
    """Convenience wrapper: iterate address chunks for a program.

    ``jit`` selects the execution engine (``"on"``/``"off"``/``"auto"``,
    see :mod:`repro.jit`); every mode emits the identical stream.
    """
    # Imported here: repro.jit subclasses TraceInterpreter, so the import
    # must not run at this module's load time.
    from repro.jit import make_interpreter

    return make_interpreter(prog, layout, env, chunk_target, jit=jit).trace()


def trace_addresses(
    prog: Program,
    layout: MemoryLayout,
    env: Optional[DataEnv] = None,
    jit: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """The full trace as two arrays (small programs / tests only)."""
    addr_parts: List[np.ndarray] = []
    write_parts: List[np.ndarray] = []
    for addrs, writes in trace_program(prog, layout, env, jit=jit):
        addr_parts.append(addrs)
        write_parts.append(writes)
    if not addr_parts:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool)
    return np.concatenate(addr_parts), np.concatenate(write_parts)


def simulate(prog: Program, layout: MemoryLayout, simulator, env=None,
             jit: str = "auto"):
    """Drive a cache simulator with a program's trace; returns its stats."""
    chunks = trace_program(prog, layout, env, jit=jit)
    stream = getattr(simulator, "access_stream", None)
    if stream is not None:
        return stream(chunks)
    for addrs, writes in chunks:
        simulator.access_chunk(addrs, writes)
    return simulator.stats


def truncate_outer_loops(prog: Program, max_trips: int) -> Program:
    """Limit every outermost loop to at most ``max_trips`` iterations.

    Used by the experiment runner to bound O(N^3) linear-algebra kernels:
    their conflict behaviour repeats across outer iterations, so a prefix
    of the outer loop preserves the miss-rate shape.  Only outermost loops
    with constant bounds are truncated.
    """
    if max_trips <= 0:
        raise SimulationError("max_trips must be positive")
    new_body = []
    for node in prog.body:
        if isinstance(node, Loop) and node.lower.is_constant and node.upper.is_constant:
            trips = node.trip_count({})
            if trips > max_trips:
                new_upper = node.lower.const + (max_trips - 1) * node.step
                node = Loop(node.var, node.lower, new_upper, node.body, step=node.step)
        new_body.append(node)
    return Program(
        prog.name,
        prog.decls,
        new_body,
        source_lines=prog.source_lines,
        suite=prog.suite,
        description=prog.description,
    )
