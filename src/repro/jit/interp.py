"""The tracing-JIT interpreter: interpret cold/ineligible code, compile
hot affine nests.

:class:`JitInterpreter` subclasses the exact trace interpreter and swaps
its body dispatcher: before interpreting a loop it consults a per-instance
plan cache (:func:`~repro.jit.specialize.specialize_nest` runs once per
loop node), binds the plan against the enclosing environment and — when
the hotness policy agrees — streams the whole nest's address blocks from
closed form instead of walking it.  Anything that fails the preconditions
falls back to the superclass machinery *mid-trace*: the deopted level is
interpreted in Python and each inner sub-nest is reconsidered on its own,
so the emitted stream is byte-identical either way.

Plan caches are keyed by loop-node identity and live exactly as long as
the interpreter.  That is deliberate: plans bake in one layout's bases and
strides, and programs share body subtrees across clones (e.g.
``truncate_outer_loops`` keeps the original inner loops), so a longer-lived
or shared cache could replay stale addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.ir.loops import BodyNode
from repro.ir.program import Program
from repro.ir.stmts import Statement
from repro.layout.layout import MemoryLayout
from repro.obs import runtime as obs
from repro.trace.env import DataEnv
from repro.trace.interpreter import Chunk, TraceInterpreter
from repro.jit.specialize import BoundNest, NestPlan, specialize_nest

#: Accepted values of the ``--jit`` flag and every ``jit=`` parameter.
JIT_MODES = ("on", "off", "auto")


def resolve_mode(value) -> str:
    """Normalize a jit-mode value (``None``/bools accepted) or raise."""
    if value is None:
        return "auto"
    if value is True:
        return "on"
    if value is False:
        return "off"
    mode = str(value).lower()
    if mode not in JIT_MODES:
        raise ConfigError(
            f"unknown jit mode {value!r}; known: {', '.join(JIT_MODES)}"
        )
    return mode


@dataclass(frozen=True)
class JitConfig:
    """Compilation policy.

    ``mode`` ``"on"`` compiles every eligible nest; ``"auto"`` compiles a
    nest once one invocation covers at least ``compile_threshold``
    accesses *or* the nest has been entered ``hot_invocations`` times
    (small nests inside hot outer loops earn compilation by repetition).
    ``"off"`` never reaches this class — :func:`make_interpreter` returns
    the plain interpreter for it.
    """

    mode: str = "auto"
    compile_threshold: int = 512
    hot_invocations: int = 8


class JitInterpreter(TraceInterpreter):
    """Trace interpreter with closed-form compilation of hot affine nests."""

    def __init__(
        self,
        prog: Program,
        layout: MemoryLayout,
        env: Optional[DataEnv] = None,
        chunk_target: int = 1 << 16,
        config: Optional[JitConfig] = None,
    ):
        super().__init__(prog, layout, env, chunk_target)
        self.config = config or JitConfig()
        if self.config.mode not in ("on", "auto"):
            raise ConfigError(
                f"JitInterpreter requires mode 'on' or 'auto', got "
                f"{self.config.mode!r}; use make_interpreter for 'off'"
            )
        # Both caches are keyed by loop-node id and scoped to this
        # interpreter (hence this layout) — see the module docstring.
        self._nest_plans: Dict[int, Union[NestPlan, str]] = {}
        self._nest_entries: Dict[int, int] = {}

    # -- dispatch ---------------------------------------------------------

    def _run_body(
        self, body: Sequence[BodyNode], env: Dict[str, int]
    ) -> Iterator[Chunk]:
        for node in body:
            if isinstance(node, Statement):
                self._emit_statement_once(node, env)
                if self._pending_count >= self.chunk_target:
                    yield self._flush()
                continue
            bound = self._compiled_nest(node, env)
            if bound is not None:
                yield from self._emit_compiled(bound)
            elif node.is_innermost:
                self._emit_vector_loop(node, env)
                if self._pending_count >= self.chunk_target:
                    yield self._flush()
            else:
                # Deopt: interpret this level; _run_loop recurses back
                # through this dispatcher, so inner sub-nests still get
                # their own shot at compilation.
                yield from self._run_loop(node, env)

    def _compiled_nest(
        self, node, env: Mapping[str, int]
    ) -> Optional[BoundNest]:
        key = id(node)
        entry = self._nest_plans.get(key)
        if entry is None:
            entry = specialize_nest(node, self.prog, self.layout)
            self._nest_plans[key] = entry
        if isinstance(entry, str):
            self._count_deopt(entry)
            return None
        bound = entry.bind(env)
        if (
            self.config.mode == "auto"
            and bound.accesses < self.config.compile_threshold
        ):
            seen = self._nest_entries.get(key, 0) + 1
            self._nest_entries[key] = seen
            if seen < self.config.hot_invocations:
                self._count_deopt("cold")
                return None
        if obs.is_enabled():
            obs.counter_add(
                "repro_jit_compiled_total", 1,
                "loop-nest invocations served by compiled address generators",
            )
        return bound

    def _emit_compiled(self, bound: BoundNest) -> Iterator[Chunk]:
        enabled = obs.is_enabled()
        for addrs, writes in bound.blocks(self.chunk_target):
            self._push(addrs, writes)
            if enabled:
                obs.counter_add(
                    "repro_jit_chunks_total", 1,
                    "address blocks emitted by compiled nest generators",
                )
            if self._pending_count >= self.chunk_target:
                yield self._flush()

    @staticmethod
    def _count_deopt(reason: str) -> None:
        if obs.is_enabled():
            obs.counter_add(
                "repro_jit_deopt_total", 1,
                "nest invocations that fell back to the interpreter",
                reason=reason,
            )


def make_interpreter(
    prog: Program,
    layout: MemoryLayout,
    env: Optional[DataEnv] = None,
    chunk_target: int = 1 << 16,
    jit="auto",
    config: Optional[JitConfig] = None,
) -> TraceInterpreter:
    """Build the interpreter a jit mode asks for.

    ``"off"`` returns the plain :class:`TraceInterpreter` (guaranteed
    pre-JIT behavior, no jit counters); ``"on"``/``"auto"`` return a
    :class:`JitInterpreter` with the corresponding policy.
    """
    mode = resolve_mode(jit)
    if mode == "off":
        return TraceInterpreter(prog, layout, env, chunk_target)
    if config is None:
        config = JitConfig(mode=mode)
    elif config.mode != mode:
        from dataclasses import replace

        config = replace(config, mode=mode)
    return JitInterpreter(prog, layout, env, chunk_target, config=config)
