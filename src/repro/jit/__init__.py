"""repro.jit — tracing JIT over the trace interpreter.

Hot, purely-affine loop nests have closed-form address streams; this
package detects them, compiles each into a batched block generator
(:mod:`repro.jit.specialize`), and runs everything else through the exact
interpreter (:mod:`repro.jit.interp`).  The emitted stream — addresses,
write flags, and order — is byte-identical to interpretation by
construction, pinned by the differential fuzz battery in
``tests/test_jit_differential.py``.

Entry point: :func:`make_interpreter`, selected everywhere by the
``jit="on"/"off"/"auto"`` parameter (CLI ``--jit``).  See ``docs/JIT.md``.
"""

from repro.jit.interp import (
    JIT_MODES,
    JitConfig,
    JitInterpreter,
    make_interpreter,
    resolve_mode,
)
from repro.jit.specialize import (
    DEOPT_REASONS,
    BoundNest,
    NestPlan,
    specialize_nest,
)

__all__ = [
    "JIT_MODES",
    "DEOPT_REASONS",
    "BoundNest",
    "JitConfig",
    "JitInterpreter",
    "NestPlan",
    "make_interpreter",
    "resolve_mode",
    "specialize_nest",
]
