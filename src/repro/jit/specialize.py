"""Nest specialization: affine loop nests into closed-form address streams.

The trace interpreter vectorizes only the *innermost* loop of a nest and
walks every enclosing level in Python, one dispatch per iteration.  For a
purely affine nest that dispatch is wasted work: every reference's byte
address is an affine function of the nest's index vector, so the whole
nest's address stream has a closed form.

:func:`specialize_nest` statically checks a nest's preconditions and, when
they hold, extracts one integer matrix ``A`` (one row per reference, one
column per loop level: the address coefficient of that level's variable)
plus a residual affine constant per reference (base address, lower-bound
shifts, and any *enclosing* loop variables, which are fixed for the
duration of the nest).  Binding the plan against a concrete environment
(:meth:`NestPlan.bind`) evaluates bounds and residuals to plain integers;
:meth:`BoundNest.blocks` then generates the stream in ``chunk_target``-sized
batches: decompose a range of flat iteration numbers into per-level trip
counters with divmods, then one integer matmul per block.

Preconditions (any failure is a *deopt reason*, see :data:`DEOPT_REASONS`):

* ``imperfect`` — a non-innermost level whose body is not exactly one loop
  (statements between loop levels, or sibling loops).
* ``shadowed`` — the same variable bound at two levels of the chain.
* ``symbolic_bounds`` — a bound that references one of the nest's own
  variables (triangular nests); bounds over *enclosing* variables are fine.
* ``indirect`` — any reference with an ``X(IDX(i))`` subscript.

A nest that deopts at its head is interpreted level by level, and every
inner sub-nest is re-considered on its own — a triangular outer loop over
a rectangular inner nest still compiles the inner nest once per outer
iteration.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple, Union

import numpy as np

from repro.ir.expr import AffineExpr
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.layout.layout import MemoryLayout

#: Why a nest fell back to the interpreter (``reason`` label on
#: ``repro_jit_deopt_total``).  ``cold`` is issued at run time by the
#: auto-mode hotness policy; the rest are static precondition failures.
DEOPT_REASONS = ("imperfect", "shadowed", "symbolic_bounds", "indirect", "cold")


def _trip(lo: int, hi: int, step: int) -> int:
    """Iteration count of ``do v = lo, hi, step`` (0 for empty ranges)."""
    if step > 0:
        return max(0, (hi - lo) // step + 1)
    return max(0, (lo - hi) // (-step) + 1)


class NestPlan:
    """A compiled (layout-specialized, environment-generic) loop nest.

    Immutable once built; :meth:`bind` produces a :class:`BoundNest` for
    one concrete enclosing environment.  Plans are private to one
    interpreter: they bake in a specific :class:`MemoryLayout`'s bases and
    strides, so they must never outlive or be shared across layouts (see
    the truncation regression suite).
    """

    __slots__ = (
        "variables", "lowers", "uppers", "steps", "coeffs", "consts",
        "flags", "depth", "ref_count",
    )

    def __init__(
        self,
        variables: Tuple[str, ...],
        lowers: Tuple[AffineExpr, ...],
        uppers: Tuple[AffineExpr, ...],
        steps: Tuple[int, ...],
        coeffs: np.ndarray,
        consts: Tuple[AffineExpr, ...],
        flags: np.ndarray,
    ):
        self.variables = variables
        self.lowers = lowers
        self.uppers = uppers
        self.steps = steps
        self.coeffs = coeffs  # (refs, depth) int64: address coef per level
        self.consts = consts  # per-ref residual over *enclosing* vars only
        self.flags = flags    # (refs,) bool write flags, program order
        self.depth = len(variables)
        self.ref_count = len(consts)

    def bind(self, env: Mapping[str, int]) -> "BoundNest":
        """Evaluate bounds and residual constants against ``env``."""
        lows: List[int] = []
        trips: List[int] = []
        for lo_expr, hi_expr, step in zip(self.lowers, self.uppers, self.steps):
            lo = lo_expr.evaluate(env)
            hi = hi_expr.evaluate(env)
            lows.append(lo)
            trips.append(_trip(lo, hi, step))
        consts = np.array(
            [expr.evaluate(env) for expr in self.consts], dtype=np.int64
        )
        # Address of ref j at trip counters t: consts[j] + A[j]·(lo + step*t)
        # = c0[j] + (A*step)[j]·t — fold the start values into the constant.
        c0 = consts + self.coeffs @ np.asarray(lows, dtype=np.int64)
        scaled = self.coeffs * np.asarray(self.steps, dtype=np.int64)[None, :]
        return BoundNest(tuple(trips), c0, scaled, self.flags)


class BoundNest:
    """A nest plan bound to concrete bounds: a block-stream generator."""

    __slots__ = ("trips", "c0", "coeffs", "flags", "total_iters", "accesses")

    def __init__(
        self,
        trips: Tuple[int, ...],
        c0: np.ndarray,
        coeffs: np.ndarray,
        flags: np.ndarray,
    ):
        self.trips = trips
        self.c0 = c0          # (refs,) per-ref address at trip (0, ..., 0)
        self.coeffs = coeffs  # (refs, depth) address delta per trip counter
        self.flags = flags
        total = 1
        for n in trips:
            total *= n
        self.total_iters = total
        self.accesses = total * len(c0)

    def blocks(
        self, chunk_target: int
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (addresses, writes) blocks of ~``chunk_target`` accesses.

        Iteration order is exactly the interpreter's: the last loop level
        varies fastest, and within one iteration the references appear in
        program order with their write flags.
        """
        refs = len(self.c0)
        if refs == 0 or self.total_iters == 0:
            return
        depth = len(self.trips)
        trips = np.asarray(self.trips, dtype=np.int64)
        # suffix[k] = iterations of the levels inside level k, so a flat
        # iteration number decomposes as t_k = (flat // suffix[k]) % n_k.
        suffix = np.ones(depth, dtype=np.int64)
        for k in range(depth - 2, -1, -1):
            suffix[k] = suffix[k + 1] * trips[k + 1]
        iters_per_block = max(1, chunk_target // refs)
        full_writes = np.tile(self.flags, iters_per_block)
        transposed = np.ascontiguousarray(self.coeffs.T)  # (depth, refs)
        for start in range(0, self.total_iters, iters_per_block):
            stop = min(self.total_iters, start + iters_per_block)
            flat = np.arange(start, stop, dtype=np.int64)
            counters = np.empty((stop - start, depth), dtype=np.int64)
            for k in range(depth):
                np.floor_divide(flat, suffix[k], out=counters[:, k])
                if k:  # level 0 never wraps: flat < n_0 * suffix[0]
                    counters[:, k] %= trips[k]
            addrs = (counters @ transposed + self.c0).reshape(-1)
            if stop - start == iters_per_block:
                writes = full_writes
            else:
                writes = np.tile(self.flags, stop - start)
            yield addrs, writes


def specialize_nest(
    loop: Loop, prog: Program, layout: MemoryLayout
) -> Union[NestPlan, str]:
    """Compile a nest headed at ``loop``, or return its deopt reason."""
    chain = [loop]
    node = loop
    while any(isinstance(child, Loop) for child in node.body):
        if len(node.body) != 1 or not isinstance(node.body[0], Loop):
            return "imperfect"
        node = node.body[0]
        chain.append(node)
    names = tuple(level.var for level in chain)
    if len(set(names)) != len(names):
        return "shadowed"
    own_vars = frozenset(names)
    for level in chain:
        if level.lower.uses_any(own_vars) or level.upper.uses_any(own_vars):
            return "symbolic_bounds"

    rows: List[List[int]] = []
    consts: List[AffineExpr] = []
    flags: List[bool] = []
    for stmt in node.body:
        for ref in stmt.refs:
            if not ref.is_affine:
                return "indirect"
            decl = prog.array(ref.array)
            addr = AffineExpr(layout.base(ref.array))
            strides = layout.strides(ref.array)
            for sub, stride, dim in zip(ref.subscripts, strides, decl.dims):
                addr = addr + sub * stride - dim.lower * stride
            rows.append([addr.coeff(name) for name in names])
            residual: Dict[str, int] = {
                var: coef
                for var, coef in addr.coeffs.items()
                if var not in own_vars
            }
            consts.append(AffineExpr(addr.const, residual))
            flags.append(ref.is_write)

    coeffs = (
        np.array(rows, dtype=np.int64)
        if rows
        else np.zeros((0, len(names)), dtype=np.int64)
    )
    return NestPlan(
        names,
        tuple(level.lower for level in chain),
        tuple(level.upper for level in chain),
        tuple(level.step for level in chain),
        coeffs,
        tuple(consts),
        np.asarray(flags, dtype=bool),
    )
