"""Seeded corpora of random affine loop nests for the JIT test battery.

Two consumers share this module so they exercise the same program space:

* the differential fuzz suite (``tests/test_jit_*``) draws hundreds of
  seeded random cases and asserts the JIT stream is byte-identical to the
  interpreter's;
* the perf comparison (``scripts/bench_snapshot.py --compare`` and
  ``benchmarks/bench_jit.py``) times both paths over the deterministic
  :func:`perf_corpus` — deep nests with small innermost trip counts, the
  shape where per-level Python dispatch dominates interpretation.

Every generator is driven exclusively by ``random.Random(seed)``, so a
seed fully determines a case across processes and platforms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir import builder as b
from repro.ir.arrays import ArrayDecl
from repro.ir.expr import AffineExpr, IndirectExpr
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.ir.refs import ArrayRef
from repro.ir.stmts import Statement
from repro.ir.types import ElementType
from repro.layout.layout import MemoryLayout, original_layout

#: Size envelopes for the random generator.  ``fuzz`` keeps traces small
#: enough for hundreds of cases in tier-1 time; ``slow`` grows sizes and
#: trip counts for the ``pytest.mark.slow`` tail.
PROFILES: Dict[str, Dict[str, int]] = {
    "fuzz": dict(dim_lo=3, dim_hi=9, trip_lo=2, trip_hi=6,
                 max_arrays=3, max_rank=3, max_depth=4),
    "slow": dict(dim_lo=5, dim_hi=24, trip_lo=3, trip_hi=12,
                 max_arrays=3, max_rank=3, max_depth=4),
}

_ELEMENT_TYPES = (
    ElementType.REAL8, ElementType.REAL8, ElementType.REAL4,
    ElementType.INT4, ElementType.BYTE,
)


@dataclass
class JitCase:
    """One generated program plus the layouts to trace it under."""

    name: str
    seed: int
    prog: Program
    layout: MemoryLayout          # unpadded baseline placement
    padded_layout: MemoryLayout   # grown dims, re-placed bases with gaps
    has_indirect: bool


class _NestBuilder:
    """Grows one random loop nest; tracks scope and constant loop ranges."""

    def __init__(self, rng: random.Random, p: Dict[str, int],
                 decls: List[ArrayDecl], allow_indirect: bool):
        self.rng = rng
        self.p = p
        self.decls = decls
        self.allow_indirect = allow_indirect
        self.extra_decls: List[ArrayDecl] = []
        self.has_indirect = False
        self._name_count = 0
        #: constant-bound loops currently in scope: var -> (lo, hi)
        self.const_ranges: Dict[str, Tuple[int, int]] = {}

    # -- loops ------------------------------------------------------------

    def build(self, depth: int) -> Loop:
        rng = self.rng
        var = "ijklmnpq"[self._name_count] if self._name_count < 8 \
            else f"v{self._name_count}"
        self._name_count += 1
        trips = rng.randint(self.p["trip_lo"], self.p["trip_hi"])
        scope = list(self.const_ranges)
        triangular = bool(scope) and rng.random() < 0.15
        if triangular:
            # lower = outer + c with a constant trip count: bounded sizes,
            # but symbolic for the specializer -> a guaranteed deopt level.
            outer = rng.choice(scope)
            lower = AffineExpr.var(outer, 1, rng.randint(0, 2))
            upper = lower + (trips - 1)
            step = 1
            const_range: Optional[Tuple[int, int]] = None
        else:
            step = rng.choice((1, 1, 1, 1, 2, 3, -1))
            start = rng.randint(0, 3)
            if step > 0:
                lo, hi = start, start + (trips - 1) * step
                lower, upper = AffineExpr(lo), AffineExpr(hi)
            else:
                hi, lo = start + trips - 1, start
                lower, upper = AffineExpr(hi), AffineExpr(lo)
            const_range = (lo, hi)

        if const_range is not None:
            self.const_ranges[var] = const_range
        body = self._body(var, depth)
        self.const_ranges.pop(var, None)
        return Loop(var, lower, upper, body, step=step)

    def _body(self, var: str, depth: int) -> list:
        rng = self.rng
        if depth <= 1:
            return self._statements()
        roll = rng.random()
        if roll < 0.55:  # perfect chain
            return [self.build(depth - 1)]
        if roll < 0.70:  # statement above the inner loop (imperfect)
            return [self._statement(), self.build(depth - 1)]
        if roll < 0.80:  # statement below the inner loop (imperfect)
            return [self.build(depth - 1), self._statement()]
        if roll < 0.90:  # sibling loops
            return [self.build(depth - 1), self.build(max(1, depth - 2))]
        return self._statements()  # end the nest early

    # -- statements and references ----------------------------------------

    def _statements(self) -> list:
        return [self._statement()
                for _ in range(self.rng.randint(1, 2))]

    def _statement(self) -> Statement:
        rng = self.rng
        sources = [self._ref() for _ in range(rng.randint(0, 2))]
        if rng.random() < 0.1 and sources:
            return b.reads_only(*sources)
        return b.stmt(self._write_ref(), *sources)

    def _write_ref(self) -> ArrayRef:
        return ArrayRef(*self._ref_parts(), is_write=True)

    def _ref(self) -> ArrayRef:
        return ArrayRef(*self._ref_parts(), is_write=False)

    def _ref_parts(self):
        rng = self.rng
        decl = rng.choice(self.decls)
        scope = list(self.const_ranges)
        all_scope = scope  # triangular vars left scope at their loop's end
        subs = []
        for dim in decl.dims:
            subs.append(self._subscript(dim, all_scope))
        if (
            self.allow_indirect
            and scope
            and rng.random() < 0.35
        ):
            pos = rng.randrange(len(subs))
            subs[pos] = self._indirect(rng.choice(scope))
            self.has_indirect = True
        return decl.name, tuple(subs)

    def _subscript(self, dim, scope) -> AffineExpr:
        rng = self.rng
        roll = rng.random()
        if roll < 0.2 or not scope:
            return AffineExpr(rng.randint(dim.lower, dim.upper))
        if roll < 0.75:
            return AffineExpr.var(rng.choice(scope), 1, rng.randint(-1, 2))
        expr = AffineExpr(rng.randint(0, 2))
        for var in rng.sample(scope, rng.randint(1, min(2, len(scope)))):
            expr = expr + AffineExpr.var(var, rng.choice((-2, -1, 1, 2, 3)))
        return expr

    def _indirect(self, var: str) -> IndirectExpr:
        lo, hi = self.const_ranges[var]
        name = f"IDX{len(self.extra_decls)}"
        self.extra_decls.append(
            ArrayDecl(name, [(lo, hi)], ElementType.INT4)
        )
        return IndirectExpr(name, AffineExpr.var(var))


def random_case(
    seed: int, profile: str = "fuzz", allow_indirect: bool = False
) -> JitCase:
    """Deterministically generate one random affine-nest test case."""
    p = PROFILES[profile]
    rng = random.Random((seed + 1) * 0x9E3779B1)
    decls = []
    for index in range(rng.randint(1, p["max_arrays"])):
        rank = rng.randint(1, p["max_rank"])
        dims = []
        for _ in range(rank):
            size = rng.randint(p["dim_lo"], p["dim_hi"])
            lower = rng.choice((0, 1, 1, 1, 2))
            dims.append((lower, lower + size - 1))
        decls.append(
            ArrayDecl("ABC"[index], dims, rng.choice(_ELEMENT_TYPES))
        )

    builder = _NestBuilder(rng, p, decls, allow_indirect)
    body = [builder.build(rng.randint(1, p["max_depth"]))
            for _ in range(rng.randint(1, 2))]
    prog = b.program(
        f"jitcase_{profile}_{seed}",
        decls=decls + builder.extra_decls,
        body=body,
        suite="jit-fuzz",
    )
    return JitCase(
        name=prog.name,
        seed=seed,
        prog=prog,
        layout=original_layout(prog),
        padded_layout=padded_variant(prog, rng),
        has_indirect=builder.has_indirect,
    )


def padded_variant(prog: Program, rng: random.Random) -> MemoryLayout:
    """A layout with randomly grown dimensions and gapped base placement."""
    layout = MemoryLayout(prog)
    for decl in prog.arrays:
        sizes = [
            dim.size + rng.choice((0, 0, 1, 2, 5, 7)) for dim in decl.dims
        ]
        layout.set_dim_sizes(decl.name, sizes)
    cursor = rng.choice((0, 64, 128))
    for decl in prog.arrays:
        align = decl.element_type.size_bytes
        cursor = ((cursor + align - 1) // align) * align
        layout.set_base(decl.name, cursor)
        cursor += layout.size_bytes(decl.name) + rng.randint(0, 6) * align
    layout.validate()
    return layout


def fuzz_cases(count: int, profile: str = "fuzz",
               allow_indirect: bool = False, base_seed: int = 0):
    """Yield ``count`` seeded cases from ``base_seed`` upward."""
    for seed in range(base_seed, base_seed + count):
        yield random_case(seed, profile=profile, allow_indirect=allow_indirect)


# -- deterministic perf corpus ---------------------------------------------

def _perf_nest(name: str, trips: Tuple[int, ...], refs: int) -> Program:
    """A perfect rectangular nest: `refs` 2-D references, given trip counts.

    Deep nests with small innermost trips are the interpreter's worst case
    (one Python dispatch per non-innermost iteration) and the JIT's best:
    that contrast is what the ≥5x CI gate measures.
    """
    n = max(trips) + 2
    decls = [b.real8(chr(ord("A") + i), n, n) for i in range((refs + 1) // 2)]
    loop_vars = "ijkl"[: len(trips)]
    sources = []
    for index in range(refs - 1):
        decl = decls[index % len(decls)]
        sources.append(
            b.r(decl.name,
                b.idx(loop_vars[-1], index % 2),
                b.idx(loop_vars[0] if len(trips) > 1 else loop_vars[-1], 0))
        )
    body = [b.stmt(
        b.w(decls[0].name, b.idx(loop_vars[-1], 1), b.idx(loop_vars[0], 0)),
        *sources,
    )]
    for var, trip in zip(reversed(loop_vars), reversed(trips)):
        body = [b.loop(var, 1, trip, body)]
    return b.program(name, decls=decls, body=body, suite="jit-perf")


def perf_corpus() -> List[Tuple[Program, MemoryLayout]]:
    """The seeded benchmark corpus the BENCH_7 comparison runs over."""
    shapes = [
        ("perf_deep4_narrow", (24, 24, 24, 6), 5),
        ("perf_deep4_tiny", (16, 16, 16, 4), 4),
        ("perf_deep3_wide", (40, 40, 24), 5),
        ("perf_deep3_narrow", (64, 64, 6), 4),
        ("perf_deep2", (256, 96), 5),
    ]
    corpus = []
    for name, trips, refs in shapes:
        prog = _perf_nest(name, trips, refs)
        corpus.append((prog, original_layout(prog)))
    return corpus
