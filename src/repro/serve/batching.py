"""Admission control and micro-batching for the analysis service.

:class:`AnalysisService` is the execution half of ``repro serve`` — the
HTTP layer parses and validates, then calls :meth:`AnalysisService.submit`
and waits.  Inside:

* a **bounded admission queue** (``queue_depth``) guards every endpoint;
  when it is full, :class:`~repro.errors.QueueFullError` propagates out
  as HTTP 429 — the service sheds load instead of queueing unboundedly
  or crashing;
* ``workers`` threads execute the in-process endpoints (pad, lint,
  inline-source simulate) — each job re-checks its deadline before it
  starts, so a request that rotted in the queue fails fast as a timeout
  instead of burning a worker on an answer nobody is waiting for;
* a single **micro-batcher** thread coalesces engine-bound work
  (benchmark simulate, ``/v1/run`` sweeps) that arrives within
  ``batch_window_s`` into one dispatch through the shared
  :class:`~repro.engine.pool.WorkerPool` — warm subprocesses, one
  :meth:`~repro.engine.core.ExperimentEngine.run_many` per batch —
  after first serving every request it can from the shared
  :class:`~repro.experiments.runner.Runner` memo tiers
  (``repro_runner_memo_hits_total`` in the scrape shows repeats never
  re-simulate).

Above the queue sits the **admission ladder** (see
``docs/RESILIENCE.md``): endpoints carry priority classes, and as
occupancy climbs past ``brownout_fraction`` of ``queue_depth``,
simulate-class requests are answered degraded (memo tier first, then
the static conflict estimator with ``degraded: true`` and an
``error_bound_pct``); past ``shed_fraction``, bulk ``/v1/run`` work is
shed with 429 while interactive pad/lint stays full fidelity.  The
same degraded path engages under forced ``--brownout``, when the
:class:`~repro.resilience.PoolSupervisor` — which wraps the worker
pool with heartbeat wedge-detection, bounded respawn and per-slot
circuit breakers — reports unhealthy, or when a fully quarantined pool
refuses a lease mid-dispatch.  Per-request deadlines propagate into
each engine dispatch as a tightened engine timeout.

The runner and the engine pool are touched only by the batcher thread;
the per-source simulate memo has its own lock.  Client timeouts abandon
the job (the waiter gets :class:`~repro.errors.RunTimeout` → HTTP 504);
an abandoned job still in the queue is skipped, one already dispatched
to the engine finishes and warms the memo for the retry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import QueueFullError, ReproError, RunTimeout
from repro.obs import runtime as obs
from repro.serve import handlers
from repro.serve.schemas import RunBatchRequest, SimulateRequest


@dataclass
class ServeConfig:
    """Everything ``repro serve`` decides at startup."""

    host: str = "127.0.0.1"
    port: int = 8077
    workers: int = 4               # in-process handler threads
    queue_depth: int = 64          # bounded admission queue (429 past this)
    timeout_s: float = 30.0        # default per-request deadline
    batch_window_s: float = 0.02   # micro-batch coalescing window
    max_batch: int = 32            # jobs coalesced per engine dispatch
    max_body_bytes: int = 1 << 20  # request bodies past this get 413
    engine_jobs: int = 4           # warm engine worker subprocesses
    engine_retries: int = 1
    guard: object = None           # Optional[GuardConfig]
    jit: str = "auto"              # trace-engine policy (repro.jit)
    campaign_dir: Optional[str] = None  # enables /v1/campaign when set
    campaign_jobs: int = 2         # worker subprocesses per campaign
    campaign_backlog: int = 4      # queued campaigns before 409
    brownout: bool = False         # force degraded simulate answers
    heartbeat_s: float = 0.5       # pool supervisor ping interval
    # admission ladder: fractions of queue_depth where degradation starts
    brownout_fraction: float = 0.75  # simulate-class answers degrade
    shed_fraction: float = 0.9       # bulk (priority 3) requests get 429
    chaos: object = None           # Optional[repro.chaos.ChaosSchedule]


class _Job:
    """One admitted request waiting for its result."""

    __slots__ = (
        "endpoint", "request", "deadline", "enqueued_at",
        "done", "result", "error", "abandoned", "degrade",
    )

    def __init__(self, endpoint: str, request, deadline: float):
        self.endpoint = endpoint
        self.request = request
        self.deadline = deadline
        self.enqueued_at = time.monotonic()
        self.done = threading.Event()
        self.result: Optional[dict] = None
        self.error: Optional[BaseException] = None
        self.abandoned = False
        self.degrade = False  # admission ladder: answer without the engine

    def finish(self, result: Optional[dict] = None,
               error: Optional[BaseException] = None) -> None:
        self.result = result
        self.error = error
        self.done.set()


#: endpoints executed on worker threads (everything else micro-batches)
_IN_PROCESS = ("pad", "lint", "simulate-source", "optimize")

#: admission ladder priority classes: 1 = interactive (never shed before
#: the queue is literally full), 2 = batch (degrades under brownout),
#: 3 = bulk (first to shed under saturation)
_PRIORITY = {
    "pad": 1,
    "lint": 1,
    "simulate-source": 1,
    "simulate-program": 2,
    "optimize": 2,
    "run": 3,
}

#: endpoints with a degraded (estimator-backed) answer available
_DEGRADABLE = ("simulate-source", "simulate-program", "run", "optimize")


class AnalysisService:
    """Bounded-queue, micro-batching executor behind the HTTP layer."""

    def __init__(self, config: Optional[ServeConfig] = None):
        from repro.experiments.runner import Runner

        self.config = config or ServeConfig()
        self.runner = Runner()
        self._pool = None
        self._engine = None
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._exec_queue: deque = deque()
        self._batch_queue: deque = deque()
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False
        self._source_memo: Dict[Tuple, dict] = {}
        self._source_lock = threading.Lock()
        self.started_at = time.time()
        #: CampaignManager when config.campaign_dir is set, else None
        self.campaigns = None

    # -- life cycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn worker threads, the batcher, and warm the engine pool."""
        if self._started:
            return
        from repro.engine.core import EngineConfig, ExperimentEngine
        from repro.engine.pool import WorkerPool
        from repro.resilience.supervisor import PoolSupervisor

        cfg = self.config
        chaos = cfg.chaos
        faults = None
        if chaos is not None:
            faults = chaos.engine_plan()
            if chaos.serve.clock_skew_s:
                from repro.chaos import clock

                clock.set_skew(chaos.serve.clock_skew_s)
        self._pool = PoolSupervisor(
            WorkerPool(jobs=cfg.engine_jobs), heartbeat_s=cfg.heartbeat_s
        )
        self._pool.warm()
        self._pool.start()
        self._engine = ExperimentEngine(
            EngineConfig(
                jobs=cfg.engine_jobs,
                timeout=cfg.timeout_s,
                retries=cfg.engine_retries,
                backoff_base=0.05,
                faults=faults,
                guard=cfg.guard,
                jit=cfg.jit,
            ),
            pool=self._pool,
        )
        self._started = True
        self._stopping.clear()
        for index in range(max(1, cfg.workers)):
            thread = threading.Thread(
                target=self._exec_loop, name=f"serve-exec-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        batcher = threading.Thread(
            target=self._batch_loop, name="serve-batch", daemon=True
        )
        batcher.start()
        self._threads.append(batcher)
        if cfg.campaign_dir:
            from repro.serve.campaigns import CampaignManager

            self.campaigns = CampaignManager(
                cfg.campaign_dir,
                jobs=cfg.campaign_jobs,
                max_queued=cfg.campaign_backlog,
            )
            self.campaigns.start()

    def stop(self) -> None:
        """Drain nothing: fail queued jobs fast and stop every thread."""
        if not self._started:
            return
        self._stopping.set()
        with self._work:
            for job in list(self._exec_queue) + list(self._batch_queue):
                job.finish(error=ReproError("service shutting down"))
            self._exec_queue.clear()
            self._batch_queue.clear()
            self._work.notify_all()
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()
        if self.campaigns is not None:
            self.campaigns.stop()
            self.campaigns = None
        if self._pool is not None:
            self._pool.close()
        if self.config.chaos is not None and getattr(
            self.config.chaos.serve, "clock_skew_s", 0.0
        ):
            from repro.chaos import clock

            clock.clear()
        self._started = False

    # -- submission (HTTP handler threads) ----------------------------------

    def submit(self, endpoint: str, request) -> dict:
        """Admit one validated request and wait for its result.

        Raises :class:`QueueFullError` when the admission queue is at
        ``queue_depth`` (429), :class:`RunTimeout` when the deadline
        passes first (504), or whatever library error the handler hit.
        """
        if not self._started:
            raise ReproError("analysis service is not running")
        timeout = getattr(request, "timeout_s", None) or self.config.timeout_s
        job = _Job(endpoint, request, time.monotonic() + timeout)
        priority = _PRIORITY.get(endpoint, 2)
        with self._work:
            depth = len(self._exec_queue) + len(self._batch_queue)
            depth += self._phantom_depth()
            if depth >= self.config.queue_depth:
                obs.counter_add(
                    "repro_serve_rejections_total", 1,
                    "requests shed by the service, by reason",
                    reason="queue_full",
                )
                raise QueueFullError(
                    f"admission queue full ({self.config.queue_depth} "
                    "waiting); retry with backoff"
                )
            rung = self._ladder_rung(depth)
            if rung >= 2 and priority >= 3:
                # saturation: shed bulk work first so interactive
                # requests keep their latency
                obs.counter_add(
                    "repro_serve_rejections_total", 1,
                    "requests shed by the service, by reason",
                    reason="shed_bulk",
                )
                raise QueueFullError(
                    f"shedding {endpoint!r} (priority {priority}) under "
                    "saturation; retry with backoff"
                )
            if endpoint in _DEGRADABLE and (rung >= 1 or self._brownout()):
                job.degrade = True
                obs.counter_add(
                    "repro_serve_degraded_total", 1,
                    "requests answered degraded, by endpoint",
                    endpoint=endpoint,
                )
            if endpoint in _IN_PROCESS:
                self._exec_queue.append(job)
            else:
                self._batch_queue.append(job)
            self._gauge_depth()
            self._work.notify_all()
        if not job.done.wait(timeout):
            job.abandoned = True
            obs.counter_add(
                "repro_serve_rejections_total", 1,
                "requests shed by the service, by reason", reason="timeout",
            )
            raise RunTimeout(
                f"{endpoint}: no result within {timeout:.1f}s "
                "(the request was abandoned)"
            )
        if job.error is not None:
            raise job.error
        return job.result

    # -- health -------------------------------------------------------------

    def health(self) -> dict:
        """Liveness and queue occupancy for ``GET /healthz``."""
        with self._lock:
            queued = len(self._exec_queue) + len(self._batch_queue)
        return {
            "status": "ok" if self._started else "stopped",
            "uptime_s": round(time.time() - self.started_at, 3),
            "queued": queued,
            "queue_depth": self.config.queue_depth,
            "workers": self.config.workers,
            "engine_workers": (
                self._pool.idle_count + self._pool.leased_count
                if self._pool is not None
                else 0
            ),
        }

    def readiness(self) -> dict:
        """Readiness for ``GET /readyz``: can this instance take work *now*?

        Liveness (``/livez``) is "the process is up"; readiness is
        stricter — a started service whose admission queue is full, or
        whose engine pool has no capacity left, reports ``ready: false``
        so a load balancer routes around it until it drains.  Each
        component reports its own saturation alongside the verdict.
        """
        with self._lock:
            queued = len(self._exec_queue) + len(self._batch_queue)
        queued += self._phantom_depth()
        queue_full = queued >= self.config.queue_depth
        pool = self._pool
        pool_component = {
            "capacity": pool.jobs if pool is not None else 0,
            "idle": pool.idle_count if pool is not None else 0,
            "leased": pool.leased_count if pool is not None else 0,
            "available": (
                pool is not None
                and not pool.closed
                and pool.idle_count + (pool.jobs - pool.leased_count) > 0
            ),
        }
        resilience = (
            pool.health()
            if pool is not None and hasattr(pool, "health")
            else {"supervised": False}
        )
        brownout = self._started and (
            self._brownout() or self._ladder_rung(queued) >= 1
        )
        campaigns = (
            self.campaigns.readiness()
            if self.campaigns is not None
            else {"enabled": False}
        )
        disk_tier = {"enabled": bool(self.config.campaign_dir)}
        if self.config.campaign_dir:
            import os

            disk_tier["writable"] = os.access(
                self.config.campaign_dir, os.W_OK
            ) if os.path.isdir(self.config.campaign_dir) else os.access(
                os.path.dirname(os.path.abspath(self.config.campaign_dir))
                or ".", os.W_OK,
            )
        ready = (
            self._started
            and not queue_full
            and not campaigns.get("saturated", False)
            and disk_tier.get("writable", True)
        )
        if ready and brownout:
            # degraded, not unready: the instance still answers — load
            # balancers should keep routing, clients see degraded: true
            status = "degraded"
        else:
            status = "ready" if ready else (
                "saturated" if self._started else "stopped"
            )
        return {
            "ready": ready,
            "status": status,
            "brownout": brownout,
            "queue": {
                "depth": queued,
                "limit": self.config.queue_depth,
                "full": queue_full,
            },
            "pool": pool_component,
            "resilience": resilience,
            "campaigns": campaigns,
            "disk_tier": disk_tier,
        }

    # -- admission ladder ----------------------------------------------------

    def _phantom_depth(self) -> int:
        """Extra queue depth injected by a chaos ``queue_flood`` fault."""
        chaos = self.config.chaos
        return chaos.serve.queue_flood if chaos is not None else 0

    def _ladder_rung(self, depth: int) -> int:
        """0 = normal, 1 = brownout (degrade), 2 = saturation (shed bulk)."""
        limit = self.config.queue_depth
        if depth >= limit * self.config.shed_fraction:
            return 2
        if depth >= limit * self.config.brownout_fraction:
            return 1
        return 0

    def _brownout(self) -> bool:
        """Forced by config, or the engine pool is too sick to simulate."""
        if self.config.brownout:
            return True
        pool = self._pool
        if pool is not None and hasattr(pool, "health"):
            return not pool.health()["healthy"]
        return False

    # -- internals ----------------------------------------------------------

    def _gauge_depth(self) -> None:
        obs.gauge_set(
            "repro_serve_queue_depth", len(self._exec_queue),
            "requests waiting for admission, by queue", queue="exec",
        )
        obs.gauge_set(
            "repro_serve_queue_depth", len(self._batch_queue),
            "requests waiting for admission, by queue", queue="batch",
        )

    def _pop(self, queue: deque) -> Optional[_Job]:
        """One non-abandoned job, or None once the service is stopping."""
        with self._work:
            while not self._stopping.is_set():
                while queue:
                    job = queue.popleft()
                    self._gauge_depth()
                    if not job.abandoned:
                        return job
                self._work.wait(timeout=0.1)
        return None

    def _exec_loop(self) -> None:
        while True:
            job = self._pop(self._exec_queue)
            if job is None:
                return
            if time.monotonic() > job.deadline:
                job.finish(error=RunTimeout(
                    f"{job.endpoint}: deadline passed while queued"
                ))
                continue
            obs.observe(
                "repro_serve_queue_wait_seconds",
                time.monotonic() - job.enqueued_at,
                "time requests sat in the admission queue",
            )
            try:
                job.finish(result=self._execute(job))
            except BaseException as exc:  # structured error at the boundary
                job.finish(error=exc)

    def _execute(self, job: _Job) -> dict:
        if job.endpoint == "pad":
            return handlers.handle_pad(job.request)
        if job.endpoint == "lint":
            return handlers.handle_lint(job.request)
        if job.endpoint == "optimize":
            # degraded answer = the greedy incumbent, no search
            return handlers.handle_optimize(job.request,
                                            degrade=job.degrade)
        if job.endpoint == "simulate-source":
            if job.degrade:
                from repro.resilience.degrade import degraded_simulate_source

                return degraded_simulate_source(job.request)
            return self._simulate_source(job.request)
        raise ReproError(f"unroutable endpoint {job.endpoint!r}")

    def _simulate_source(self, request: SimulateRequest) -> dict:
        key = (
            request.source, tuple(sorted(request.params.items())),
            request.heuristic, request.m_lines, request.cache,
        )
        with self._source_lock:
            hit = self._source_memo.get(key)
        if hit is not None:
            obs.counter_add(
                "repro_runner_memo_hits_total", 1,
                "simulation results served from memory", tier="serve",
            )
            return hit
        result = handlers.handle_simulate_source(request)
        with self._source_lock:
            self._source_memo[key] = result
        return result

    # -- micro-batching -----------------------------------------------------

    def _batch_loop(self) -> None:
        while True:
            first = self._pop(self._batch_queue)
            if first is None:
                return
            jobs = [first]
            horizon = time.monotonic() + self.config.batch_window_s
            with self._work:
                while (
                    len(jobs) < self.config.max_batch
                    and not self._stopping.is_set()
                ):
                    while self._batch_queue and len(jobs) < self.config.max_batch:
                        job = self._batch_queue.popleft()
                        self._gauge_depth()
                        if not job.abandoned:
                            jobs.append(job)
                    remaining = horizon - time.monotonic()
                    if remaining <= 0 or len(jobs) >= self.config.max_batch:
                        break
                    self._work.wait(timeout=remaining)
            self._dispatch_batch(jobs)

    def _dispatch_batch(self, jobs: List[_Job]) -> None:
        """Serve one coalesced batch: memo tiers first, engine for the rest."""
        from repro.experiments.runner import request_key

        obs.counter_add(
            "repro_serve_batches_total", 1, "micro-batches dispatched"
        )
        obs.observe(
            "repro_serve_batch_jobs", len(jobs),
            "requests coalesced per micro-batch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        plans = []  # (job, [RunRequest]) in arrival order
        for job in jobs:
            try:
                plans.append((job, self._requests_for(job)))
            except BaseException as exc:
                job.finish(error=exc)
        degraded = [plan for plan in plans if plan[0].degrade]
        plans = [plan for plan in plans if not plan[0].degrade]
        for job, requests in degraded:
            try:
                job.finish(result=self._assemble_degraded(job, requests))
            except BaseException as exc:
                job.finish(error=exc)
        memo: Dict[str, object] = {}
        missing: Dict[str, object] = {}
        for _job, requests in plans:
            for request in requests:
                key = request_key(request)
                if key in memo or key in missing:
                    continue
                stats = self.runner.memo_lookup(request)
                if stats is not None:
                    memo[key] = stats
                else:
                    missing[key] = request
        outcomes: Dict[str, object] = {}
        if missing:
            try:
                results = self._batch_engine(plans).run_many(
                    list(missing.values())
                )
            except BaseException as exc:
                # A quarantined pool (every breaker open) still has a
                # degraded answer; anything else fails the batch.
                from repro.errors import EngineError

                if not isinstance(exc, EngineError):
                    for job, _requests in plans:
                        if not job.done.is_set():
                            job.finish(error=exc)
                    return
                for job, requests in plans:
                    if job.done.is_set() or job.abandoned:
                        continue
                    obs.counter_add(
                        "repro_serve_degraded_total", 1,
                        "requests answered degraded, by endpoint",
                        endpoint=job.endpoint,
                    )
                    try:
                        job.finish(
                            result=self._assemble_degraded(job, requests)
                        )
                    except BaseException as inner:
                        job.finish(error=inner)
                return
            for outcome in results:
                outcomes[outcome.key] = outcome
                if outcome.stats is not None:
                    self.runner.prime(outcome.request, outcome.stats)
        for job, requests in plans:
            if job.done.is_set() or job.abandoned:
                continue
            try:
                job.finish(result=self._assemble(job, requests, memo, outcomes))
            except BaseException as exc:
                job.finish(error=exc)

    def _batch_engine(self, plans):
        """The engine for one dispatch, deadline-clamped to its jobs.

        The tightest live deadline in the batch propagates into the
        worker timeout, so a request admitted with two seconds left
        cannot pin a worker for the full configured budget after its
        waiter has already given up.
        """
        import dataclasses as _dc

        deadlines = [
            job.deadline for job, _ in plans
            if not (job.done.is_set() or job.abandoned)
        ]
        if not deadlines:
            return self._engine
        remaining = min(deadlines) - time.monotonic()
        base = self._engine.config
        if remaining >= base.timeout:
            return self._engine
        from repro.engine.core import ExperimentEngine

        return ExperimentEngine(
            _dc.replace(base, timeout=max(0.1, remaining)), pool=self._pool
        )

    def _assemble_degraded(self, job: _Job, requests) -> dict:
        """Estimator-backed records for one browned-out engine job."""
        from repro.resilience.degrade import degraded_run_record

        records = [
            degraded_run_record(
                request,
                cached_stats=self.runner.memo_lookup(request),
                runner=self.runner,
            )
            for request in requests
        ]
        if job.endpoint == "simulate-program":
            record = dict(records[0])
            record["cache"] = job.request.cache.describe()
            return record
        counts: Dict[str, int] = {}
        for record in records:
            counts[record["status"]] = counts.get(record["status"], 0) + 1
        return {"outcomes": records, "counts": counts, "degraded": True}

    def _requests_for(self, job: _Job) -> list:
        """Resolve one engine-bound job to its RunRequests."""
        if job.endpoint == "simulate-program":
            request: SimulateRequest = job.request
            return [
                self.runner.request_for(
                    request.program, request.heuristic, request.cache,
                    size=request.size, m_lines=request.m_lines,
                )
            ]
        if job.endpoint == "run":
            batch: RunBatchRequest = job.request
            return [
                self.runner.request_for(
                    item["program"], item["heuristic"], batch.cache,
                    size=item["size"], m_lines=item["m_lines"],
                )
                for item in batch.items
            ]
        raise ReproError(f"unbatchable endpoint {job.endpoint!r}")

    def _assemble(self, job: _Job, requests, memo, outcomes) -> dict:
        from repro.experiments.runner import request_key

        records = []
        for request in requests:
            key = request_key(request)
            if key in memo:
                records.append(
                    {
                        "program": request.program,
                        "heuristic": request.heuristic,
                        "size": request.size,
                        "status": "cached",
                        "attempts": 0,
                        "stats": handlers.stats_record(memo[key]),
                    }
                )
            elif key in outcomes:
                records.append(handlers.outcome_record(outcomes[key]))
            else:  # pragma: no cover - engine returns one outcome per input
                records.append(
                    {
                        "program": request.program,
                        "heuristic": request.heuristic,
                        "size": request.size,
                        "status": "failed",
                        "attempts": 0,
                        "stats": None,
                        "error": "no outcome produced",
                    }
                )
        if job.endpoint == "simulate-program":
            record = dict(records[0])
            record["cache"] = job.request.cache.describe()
            return record
        counts: Dict[str, int] = {}
        for record in records:
            counts[record["status"]] = counts.get(record["status"], 0) + 1
        return {"outcomes": records, "counts": counts}
