"""Admission control and micro-batching for the analysis service.

:class:`AnalysisService` is the execution half of ``repro serve`` — the
HTTP layer parses and validates, then calls :meth:`AnalysisService.submit`
and waits.  Inside:

* a **bounded admission queue** (``queue_depth``) guards every endpoint;
  when it is full, :class:`~repro.errors.QueueFullError` propagates out
  as HTTP 429 — the service sheds load instead of queueing unboundedly
  or crashing;
* ``workers`` threads execute the in-process endpoints (pad, lint,
  inline-source simulate) — each job re-checks its deadline before it
  starts, so a request that rotted in the queue fails fast as a timeout
  instead of burning a worker on an answer nobody is waiting for;
* a single **micro-batcher** thread coalesces engine-bound work
  (benchmark simulate, ``/v1/run`` sweeps) that arrives within
  ``batch_window_s`` into one dispatch through the shared
  :class:`~repro.engine.pool.WorkerPool` — warm subprocesses, one
  :meth:`~repro.engine.core.ExperimentEngine.run_many` per batch —
  after first serving every request it can from the shared
  :class:`~repro.experiments.runner.Runner` memo tiers
  (``repro_runner_memo_hits_total`` in the scrape shows repeats never
  re-simulate).

The runner and the engine pool are touched only by the batcher thread;
the per-source simulate memo has its own lock.  Client timeouts abandon
the job (the waiter gets :class:`~repro.errors.RunTimeout` → HTTP 504);
an abandoned job still in the queue is skipped, one already dispatched
to the engine finishes and warms the memo for the retry.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import QueueFullError, ReproError, RunTimeout
from repro.obs import runtime as obs
from repro.serve import handlers
from repro.serve.schemas import RunBatchRequest, SimulateRequest


@dataclass
class ServeConfig:
    """Everything ``repro serve`` decides at startup."""

    host: str = "127.0.0.1"
    port: int = 8077
    workers: int = 4               # in-process handler threads
    queue_depth: int = 64          # bounded admission queue (429 past this)
    timeout_s: float = 30.0        # default per-request deadline
    batch_window_s: float = 0.02   # micro-batch coalescing window
    max_batch: int = 32            # jobs coalesced per engine dispatch
    max_body_bytes: int = 1 << 20  # request bodies past this get 413
    engine_jobs: int = 4           # warm engine worker subprocesses
    engine_retries: int = 1
    guard: object = None           # Optional[GuardConfig]
    jit: str = "auto"              # trace-engine policy (repro.jit)
    campaign_dir: Optional[str] = None  # enables /v1/campaign when set
    campaign_jobs: int = 2         # worker subprocesses per campaign
    campaign_backlog: int = 4      # queued campaigns before 409


class _Job:
    """One admitted request waiting for its result."""

    __slots__ = (
        "endpoint", "request", "deadline", "enqueued_at",
        "done", "result", "error", "abandoned",
    )

    def __init__(self, endpoint: str, request, deadline: float):
        self.endpoint = endpoint
        self.request = request
        self.deadline = deadline
        self.enqueued_at = time.monotonic()
        self.done = threading.Event()
        self.result: Optional[dict] = None
        self.error: Optional[BaseException] = None
        self.abandoned = False

    def finish(self, result: Optional[dict] = None,
               error: Optional[BaseException] = None) -> None:
        self.result = result
        self.error = error
        self.done.set()


#: endpoints executed on worker threads (everything else micro-batches)
_IN_PROCESS = ("pad", "lint", "simulate-source")


class AnalysisService:
    """Bounded-queue, micro-batching executor behind the HTTP layer."""

    def __init__(self, config: Optional[ServeConfig] = None):
        from repro.experiments.runner import Runner

        self.config = config or ServeConfig()
        self.runner = Runner()
        self._pool = None
        self._engine = None
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._exec_queue: deque = deque()
        self._batch_queue: deque = deque()
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False
        self._source_memo: Dict[Tuple, dict] = {}
        self._source_lock = threading.Lock()
        self.started_at = time.time()
        #: CampaignManager when config.campaign_dir is set, else None
        self.campaigns = None

    # -- life cycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn worker threads, the batcher, and warm the engine pool."""
        if self._started:
            return
        from repro.engine.core import EngineConfig, ExperimentEngine
        from repro.engine.pool import WorkerPool

        cfg = self.config
        self._pool = WorkerPool(jobs=cfg.engine_jobs)
        self._pool.warm()
        self._engine = ExperimentEngine(
            EngineConfig(
                jobs=cfg.engine_jobs,
                timeout=cfg.timeout_s,
                retries=cfg.engine_retries,
                backoff_base=0.05,
                guard=cfg.guard,
                jit=cfg.jit,
            ),
            pool=self._pool,
        )
        self._started = True
        self._stopping.clear()
        for index in range(max(1, cfg.workers)):
            thread = threading.Thread(
                target=self._exec_loop, name=f"serve-exec-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        batcher = threading.Thread(
            target=self._batch_loop, name="serve-batch", daemon=True
        )
        batcher.start()
        self._threads.append(batcher)
        if cfg.campaign_dir:
            from repro.serve.campaigns import CampaignManager

            self.campaigns = CampaignManager(
                cfg.campaign_dir,
                jobs=cfg.campaign_jobs,
                max_queued=cfg.campaign_backlog,
            )
            self.campaigns.start()

    def stop(self) -> None:
        """Drain nothing: fail queued jobs fast and stop every thread."""
        if not self._started:
            return
        self._stopping.set()
        with self._work:
            for job in list(self._exec_queue) + list(self._batch_queue):
                job.finish(error=ReproError("service shutting down"))
            self._exec_queue.clear()
            self._batch_queue.clear()
            self._work.notify_all()
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()
        if self.campaigns is not None:
            self.campaigns.stop()
            self.campaigns = None
        if self._pool is not None:
            self._pool.close()
        self._started = False

    # -- submission (HTTP handler threads) ----------------------------------

    def submit(self, endpoint: str, request) -> dict:
        """Admit one validated request and wait for its result.

        Raises :class:`QueueFullError` when the admission queue is at
        ``queue_depth`` (429), :class:`RunTimeout` when the deadline
        passes first (504), or whatever library error the handler hit.
        """
        if not self._started:
            raise ReproError("analysis service is not running")
        timeout = getattr(request, "timeout_s", None) or self.config.timeout_s
        job = _Job(endpoint, request, time.monotonic() + timeout)
        with self._work:
            depth = len(self._exec_queue) + len(self._batch_queue)
            if depth >= self.config.queue_depth:
                obs.counter_add(
                    "repro_serve_rejections_total", 1,
                    "requests shed by the service, by reason",
                    reason="queue_full",
                )
                raise QueueFullError(
                    f"admission queue full ({self.config.queue_depth} "
                    "waiting); retry with backoff"
                )
            if endpoint in _IN_PROCESS:
                self._exec_queue.append(job)
            else:
                self._batch_queue.append(job)
            self._gauge_depth()
            self._work.notify_all()
        if not job.done.wait(timeout):
            job.abandoned = True
            obs.counter_add(
                "repro_serve_rejections_total", 1,
                "requests shed by the service, by reason", reason="timeout",
            )
            raise RunTimeout(
                f"{endpoint}: no result within {timeout:.1f}s "
                "(the request was abandoned)"
            )
        if job.error is not None:
            raise job.error
        return job.result

    # -- health -------------------------------------------------------------

    def health(self) -> dict:
        """Liveness and queue occupancy for ``GET /healthz``."""
        with self._lock:
            queued = len(self._exec_queue) + len(self._batch_queue)
        return {
            "status": "ok" if self._started else "stopped",
            "uptime_s": round(time.time() - self.started_at, 3),
            "queued": queued,
            "queue_depth": self.config.queue_depth,
            "workers": self.config.workers,
            "engine_workers": (
                self._pool.idle_count + self._pool.leased_count
                if self._pool is not None
                else 0
            ),
        }

    def readiness(self) -> dict:
        """Readiness for ``GET /readyz``: can this instance take work *now*?

        Liveness (``/livez``) is "the process is up"; readiness is
        stricter — a started service whose admission queue is full, or
        whose engine pool has no capacity left, reports ``ready: false``
        so a load balancer routes around it until it drains.  Each
        component reports its own saturation alongside the verdict.
        """
        with self._lock:
            queued = len(self._exec_queue) + len(self._batch_queue)
        queue_full = queued >= self.config.queue_depth
        pool = self._pool
        pool_component = {
            "capacity": pool.jobs if pool is not None else 0,
            "idle": pool.idle_count if pool is not None else 0,
            "leased": pool.leased_count if pool is not None else 0,
            "available": (
                pool is not None
                and not pool.closed
                and pool.idle_count + (pool.jobs - pool.leased_count) > 0
            ),
        }
        campaigns = (
            self.campaigns.readiness()
            if self.campaigns is not None
            else {"enabled": False}
        )
        disk_tier = {"enabled": bool(self.config.campaign_dir)}
        if self.config.campaign_dir:
            import os

            disk_tier["writable"] = os.access(
                self.config.campaign_dir, os.W_OK
            ) if os.path.isdir(self.config.campaign_dir) else os.access(
                os.path.dirname(os.path.abspath(self.config.campaign_dir))
                or ".", os.W_OK,
            )
        ready = (
            self._started
            and not queue_full
            and not campaigns.get("saturated", False)
            and disk_tier.get("writable", True)
        )
        return {
            "ready": ready,
            "status": "ready" if ready else (
                "saturated" if self._started else "stopped"
            ),
            "queue": {
                "depth": queued,
                "limit": self.config.queue_depth,
                "full": queue_full,
            },
            "pool": pool_component,
            "campaigns": campaigns,
            "disk_tier": disk_tier,
        }

    # -- internals ----------------------------------------------------------

    def _gauge_depth(self) -> None:
        obs.gauge_set(
            "repro_serve_queue_depth", len(self._exec_queue),
            "requests waiting for admission, by queue", queue="exec",
        )
        obs.gauge_set(
            "repro_serve_queue_depth", len(self._batch_queue),
            "requests waiting for admission, by queue", queue="batch",
        )

    def _pop(self, queue: deque) -> Optional[_Job]:
        """One non-abandoned job, or None once the service is stopping."""
        with self._work:
            while not self._stopping.is_set():
                while queue:
                    job = queue.popleft()
                    self._gauge_depth()
                    if not job.abandoned:
                        return job
                self._work.wait(timeout=0.1)
        return None

    def _exec_loop(self) -> None:
        while True:
            job = self._pop(self._exec_queue)
            if job is None:
                return
            if time.monotonic() > job.deadline:
                job.finish(error=RunTimeout(
                    f"{job.endpoint}: deadline passed while queued"
                ))
                continue
            obs.observe(
                "repro_serve_queue_wait_seconds",
                time.monotonic() - job.enqueued_at,
                "time requests sat in the admission queue",
            )
            try:
                job.finish(result=self._execute(job))
            except BaseException as exc:  # structured error at the boundary
                job.finish(error=exc)

    def _execute(self, job: _Job) -> dict:
        if job.endpoint == "pad":
            return handlers.handle_pad(job.request)
        if job.endpoint == "lint":
            return handlers.handle_lint(job.request)
        if job.endpoint == "simulate-source":
            return self._simulate_source(job.request)
        raise ReproError(f"unroutable endpoint {job.endpoint!r}")

    def _simulate_source(self, request: SimulateRequest) -> dict:
        key = (
            request.source, tuple(sorted(request.params.items())),
            request.heuristic, request.m_lines, request.cache,
        )
        with self._source_lock:
            hit = self._source_memo.get(key)
        if hit is not None:
            obs.counter_add(
                "repro_runner_memo_hits_total", 1,
                "simulation results served from memory", tier="serve",
            )
            return hit
        result = handlers.handle_simulate_source(request)
        with self._source_lock:
            self._source_memo[key] = result
        return result

    # -- micro-batching -----------------------------------------------------

    def _batch_loop(self) -> None:
        while True:
            first = self._pop(self._batch_queue)
            if first is None:
                return
            jobs = [first]
            horizon = time.monotonic() + self.config.batch_window_s
            with self._work:
                while (
                    len(jobs) < self.config.max_batch
                    and not self._stopping.is_set()
                ):
                    while self._batch_queue and len(jobs) < self.config.max_batch:
                        job = self._batch_queue.popleft()
                        self._gauge_depth()
                        if not job.abandoned:
                            jobs.append(job)
                    remaining = horizon - time.monotonic()
                    if remaining <= 0 or len(jobs) >= self.config.max_batch:
                        break
                    self._work.wait(timeout=remaining)
            self._dispatch_batch(jobs)

    def _dispatch_batch(self, jobs: List[_Job]) -> None:
        """Serve one coalesced batch: memo tiers first, engine for the rest."""
        from repro.experiments.runner import request_key

        obs.counter_add(
            "repro_serve_batches_total", 1, "micro-batches dispatched"
        )
        obs.observe(
            "repro_serve_batch_jobs", len(jobs),
            "requests coalesced per micro-batch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        plans = []  # (job, [RunRequest]) in arrival order
        for job in jobs:
            try:
                plans.append((job, self._requests_for(job)))
            except BaseException as exc:
                job.finish(error=exc)
        memo: Dict[str, object] = {}
        missing: Dict[str, object] = {}
        for _job, requests in plans:
            for request in requests:
                key = request_key(request)
                if key in memo or key in missing:
                    continue
                stats = self.runner.memo_lookup(request)
                if stats is not None:
                    memo[key] = stats
                else:
                    missing[key] = request
        outcomes: Dict[str, object] = {}
        if missing:
            try:
                results = self._engine.run_many(list(missing.values()))
            except BaseException as exc:  # engine never should; fail the batch
                for job, _requests in plans:
                    if not job.done.is_set():
                        job.finish(error=exc)
                return
            for outcome in results:
                outcomes[outcome.key] = outcome
                if outcome.stats is not None:
                    self.runner.prime(outcome.request, outcome.stats)
        for job, requests in plans:
            if job.done.is_set() or job.abandoned:
                continue
            try:
                job.finish(result=self._assemble(job, requests, memo, outcomes))
            except BaseException as exc:
                job.finish(error=exc)

    def _requests_for(self, job: _Job) -> list:
        """Resolve one engine-bound job to its RunRequests."""
        if job.endpoint == "simulate-program":
            request: SimulateRequest = job.request
            return [
                self.runner.request_for(
                    request.program, request.heuristic, request.cache,
                    size=request.size, m_lines=request.m_lines,
                )
            ]
        if job.endpoint == "run":
            batch: RunBatchRequest = job.request
            return [
                self.runner.request_for(
                    item["program"], item["heuristic"], batch.cache,
                    size=item["size"], m_lines=item["m_lines"],
                )
                for item in batch.items
            ]
        raise ReproError(f"unbatchable endpoint {job.endpoint!r}")

    def _assemble(self, job: _Job, requests, memo, outcomes) -> dict:
        from repro.experiments.runner import request_key

        records = []
        for request in requests:
            key = request_key(request)
            if key in memo:
                records.append(
                    {
                        "program": request.program,
                        "heuristic": request.heuristic,
                        "size": request.size,
                        "status": "cached",
                        "attempts": 0,
                        "stats": handlers.stats_record(memo[key]),
                    }
                )
            elif key in outcomes:
                records.append(handlers.outcome_record(outcomes[key]))
            else:  # pragma: no cover - engine returns one outcome per input
                records.append(
                    {
                        "program": request.program,
                        "heuristic": request.heuristic,
                        "size": request.size,
                        "status": "failed",
                        "attempts": 0,
                        "stats": None,
                        "error": "no outcome produced",
                    }
                )
        if job.endpoint == "simulate-program":
            record = dict(records[0])
            record["cache"] = job.request.cache.describe()
            return record
        counts: Dict[str, int] = {}
        for record in records:
            counts[record["status"]] = counts.get(record["status"], 0) + 1
        return {"outcomes": records, "counts": counts}
