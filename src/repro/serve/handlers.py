"""Endpoint logic: validated request objects in, JSON-safe dicts out.

Handlers are pure with respect to the HTTP layer — they know nothing of
sockets, headers or status codes — so the unit tests exercise them
directly and the server module stays a thin routing shell.  Library
errors propagate; :mod:`repro.serve.schemas` maps them to HTTP statuses
and structured bodies at the boundary.

Simulation requests against **registered benchmarks** do not run here:
they are resolved to :class:`~repro.experiments.runner.RunRequest`
objects and executed by the micro-batcher (:mod:`repro.serve.batching`)
through the shared warm engine pool.  Inline-**source** requests build
their program in-process (the DSL front end is cheap and the kernels are
bounded by the source-size ceiling) and simulate under the service's
guard policy, memoized per (source, params, heuristic, cache).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.cache.stats import CacheStats
from repro.experiments.runner import HEURISTICS
from repro.ir.program import Program
from repro.serve.schemas import (
    LintRequest,
    OptimizeRequest,
    PadRequest,
    SimulateRequest,
)


def _build_program(source: str, params) -> Program:
    from repro.frontend import parse_program

    return parse_program(source, params=params or None)


def _run_heuristic(prog: Program, heuristic: str, cache, m_lines: int):
    from repro.padding.common import PadParams

    params = PadParams.for_cache(cache, m_lines=m_lines)
    return HEURISTICS[heuristic](prog, params)


def stats_record(stats: Optional[CacheStats]) -> Optional[dict]:
    """JSON-safe rendering of one simulation result."""
    if stats is None:
        return None
    record = dataclasses.asdict(stats)
    record["miss_rate_pct"] = round(stats.miss_rate_pct, 4)
    return record


def finding_record(finding) -> dict:
    """JSON-safe rendering of one lint finding."""
    return {
        "rule": finding.rule,
        "severity": finding.severity.label,
        "message": finding.message,
        "line": finding.line,
        "array": finding.array,
    }


def handle_pad(request: PadRequest) -> dict:
    """Pad one kernel: decisions, final layout, overhead, optional lint."""
    prog = _build_program(request.source, request.params)
    result = _run_heuristic(prog, request.heuristic, request.cache,
                            request.m_lines)
    layout = result.layout
    response = {
        "program": result.prog.name,
        "heuristic": request.heuristic,
        "cache": request.cache.describe(),
        "intra": [
            {
                "array": d.array,
                "dim": d.dim_index,
                "elements": d.elements,
                "heuristic": d.heuristic,
            }
            for d in result.intra_decisions
        ],
        "inter": [
            {"unit": d.unit, "pad_bytes": d.pad_bytes, "base": d.final,
             "gave_up": d.gave_up, "abandoned": list(d.abandoned)}
            for d in result.inter_decisions
        ],
        "layout": {
            decl.name: {
                "base": layout.base(decl.name),
                "dims": list(layout.dim_sizes(decl.name))
                if hasattr(decl, "dim_sizes") else None,
            }
            for decl in result.prog.decls
        },
        "total_bytes": layout.end_address(),
    }
    if result.guard is not None:
        response["guard"] = result.guard.to_record()
    if request.lint:
        from repro.lint import LintConfig
        from repro.lint.engine import lint_program

        lint = lint_program(
            result.prog,
            config=LintConfig(cache=request.cache, select=("C",)),
            layout=layout,
        )
        response["lint"] = {
            "clean": lint.clean,
            "findings": [finding_record(f) for f in lint.findings],
        }
    return response


def _score_record(score) -> dict:
    return {
        "conflict_misses": score.conflicts,
        "total_bytes": score.total_bytes,
        "scorer": score.scorer,
        "miss_rate_pct": round(score.miss_rate_pct, 4),
    }


def handle_optimize(request: OptimizeRequest, degrade: bool = False) -> dict:
    """Joint inter/intra pad search; degraded = greedy incumbent only.

    Under brownout the admission ladder answers with just the greedy
    heuristic's layout (the search incumbent — still a sound, guarded
    answer) and flags the response ``degraded`` so clients can retry
    for the full search later.
    """
    from repro.optimize import optimize_layout, score_layout
    from repro.padding.common import PadParams

    prog = _build_program(request.source, request.params)
    params = PadParams.for_cache(request.cache, m_lines=request.m_lines)

    if degrade:
        result = HEURISTICS[request.heuristic](prog, params)
        score = score_layout(prog, result.layout, params)
        layout = result.layout
        response = {
            "program": prog.name,
            "degraded": True,
            "objective": request.objective,
            "heuristic": request.heuristic,
            "cache": request.cache.describe(),
            "winner_from": "incumbent",
            "improved": False,
            "incumbent": _score_record(score),
            "winner": _score_record(score),
            "layout": {
                decl.name: {
                    "base": layout.base(decl.name),
                    "dims": list(layout.dim_sizes(decl.name)),
                }
                for decl in prog.arrays
            },
            "total_bytes": layout.end_address(),
        }
        return response

    result = optimize_layout(
        prog, params,
        beam=request.beam, budget=request.budget,
        objective=request.objective, heuristic=request.heuristic,
    )
    layout = result.layout
    response = {
        "program": result.program,
        "degraded": False,
        "objective": result.objective,
        "heuristic": result.heuristic,
        "cache": request.cache.describe(),
        "winner_from": result.winner_from,
        "improved": result.improved,
        "improvement": result.improvement,
        "incumbent": _score_record(result.incumbent_score),
        "winner": _score_record(result.winner_score),
        "assignment": [
            {"kind": kind, "name": name, "value": value}
            for (kind, name), value in sorted(result.assignment.items())
        ],
        "search": {
            "beam": result.beam,
            "budget": result.budget,
            "enumerated": result.enumerated,
            "scored": result.scored,
            "scored_predict": result.scored_predict,
            "scored_sim": result.scored_sim,
            "prunes": result.prunes,
            "variables": result.variables,
            "constraints": result.constraints,
            "seeds": result.seeds,
        },
        "layout": {
            decl.name: {
                "base": layout.base(decl.name),
                "dims": list(layout.dim_sizes(decl.name)),
            }
            for decl in prog.arrays
        },
        "total_bytes": layout.end_address(),
    }
    if result.guard is not None:
        response["guard"] = result.guard.to_record()
    return response


def handle_lint(request: LintRequest) -> dict:
    """Statically analyze one kernel; findings are data, never an error."""
    from repro.lint import LintConfig
    from repro.lint.engine import lint_source

    result = lint_source(
        request.source,
        params=request.params or None,
        config=LintConfig(
            cache=request.cache,
            select=request.select,
            ignore=request.ignore,
        ),
        source_name="<request>",
    )
    return {
        "program": result.program,
        "clean": result.clean,
        "counts": result.counts(),
        "findings": [finding_record(f) for f in result.findings],
    }


def handle_simulate_source(request: SimulateRequest) -> dict:
    """Simulate inline DSL before/after padding under the active guard."""
    from repro import simulate_program
    from repro.guard import runtime as guard_runtime
    from repro.padding.drivers import original

    prog = _build_program(request.source, request.params)
    baseline = original(prog)
    before = simulate_program(prog, baseline.layout, request.cache)
    response = {
        "program": prog.name,
        "heuristic": request.heuristic,
        "cache": request.cache.describe(),
        "original": stats_record(before),
    }
    if request.heuristic == "original":
        return response
    result = _run_heuristic(prog, request.heuristic, request.cache,
                            request.m_lines)
    guard = guard_runtime.active_config()
    if guard is not None:
        from repro.guard import check_transform

        report, after = check_transform(
            result.prog, result.layout, guard,
            simulate_fn=lambda p, lay: simulate_program(p, lay, request.cache),
            baseline_stats=before,
            dropped=result.guard.dropped if result.guard else (),
        )
        response["guard"] = report.to_record()
    else:
        after = simulate_program(result.prog, result.layout, request.cache)
    response["padded"] = stats_record(after)
    response["improvement_pct"] = round(
        before.miss_rate_pct - after.miss_rate_pct, 4
    )
    return response


def outcome_record(outcome) -> dict:
    """JSON-safe rendering of one engine run outcome."""
    record = {
        "program": outcome.request.program,
        "heuristic": outcome.request.heuristic,
        "size": outcome.request.size,
        "status": outcome.status,
        "attempts": outcome.attempts,
        "stats": stats_record(outcome.stats),
    }
    if outcome.error:
        record["error"] = outcome.error
    if outcome.guard:
        record["guard"] = outcome.guard
    return record
