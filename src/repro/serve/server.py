"""HTTP front end for the analysis service (``repro serve``).

Stdlib only: :class:`http.server.ThreadingHTTPServer` accepts
connections, one handler thread per request parses and validates the
body (:mod:`repro.serve.schemas`), then blocks on
:meth:`~repro.serve.batching.AnalysisService.submit` for the result.
All throttling lives in the service — the HTTP layer's only defenses
are the max-body ceiling (413 before reading an oversized body) and
translating library errors into the uniform structured bodies.

Routes::

    POST /v1/pad           pad one kernel, report decisions + layout
    POST /v1/lint          static cache-hazard analysis
    POST /v1/simulate      miss rates for inline source or a benchmark
    POST /v1/run           a benchmark sweep through the warm engine pool
    POST /v1/campaign      launch (or attach to) a crash-resumable campaign
    GET  /v1/campaign      list known campaigns
    GET  /v1/campaign/<id> campaign progress (journal-replayed) + results
    GET  /livez            liveness: the process is up (always 200)
    GET  /readyz           readiness: queue depth, pool capacity, disk
                           tier — 503 while saturated or stopped
    GET  /healthz          legacy liveness + queue occupancy
    GET  /metrics          Prometheus text format (repro.obs exporter)

Campaign submissions bypass the admission queue (they are minutes-long
batch work, not interactive requests) and run serially on the service's
:class:`~repro.serve.campaigns.CampaignManager`; the POST returns 202
with the campaign id for polling.

Every request increments ``repro_serve_requests_total{endpoint,code}``
and lands one ``repro_serve_request_seconds{endpoint}`` observation, so
the scrape shows per-endpoint traffic, error mix and latency.
"""

from __future__ import annotations

import json
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.errors import CampaignError, PayloadTooLarge, ReproError, UsageError
from repro.obs import runtime as obs
from repro.obs.export import to_prometheus
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS
from repro.serve.batching import AnalysisService, ServeConfig
from repro.serve.schemas import (
    error_body,
    http_status_for,
    validate_campaign,
    validate_lint,
    validate_optimize,
    validate_pad,
    validate_run,
    validate_simulate,
)

#: POST route -> (endpoint label, validator); the simulate endpoint is
#: re-labelled per request form (source vs program) after validation.
_ROUTES = {
    "/v1/pad": ("pad", validate_pad),
    "/v1/optimize": ("optimize", validate_optimize),
    "/v1/lint": ("lint", validate_lint),
    "/v1/simulate": ("simulate", validate_simulate),
    "/v1/run": ("run", validate_run),
}

class _Handler(BaseHTTPRequestHandler):
    """One request: route, validate, submit, render.

    Every request gets an id (``X-Request-Id`` on the response, echoed
    in every error body) so a 500 in a client log can be matched to the
    server's counters.  Unexpected exceptions — anything that is not a
    mapped :class:`~repro.errors.ReproError` — never tear down the
    connection raw: :meth:`do_GET` / :meth:`do_POST` wrap their routing
    in a last-resort handler that answers a structured ``InternalError``
    500 and bumps ``repro_serve_internal_errors_total``.
    """

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"
    request_id: str = "-"

    # quiet by default; the metrics tell the traffic story
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def _error_body(self, exc: BaseException) -> dict:
        body = error_body(exc)
        body["error"]["request_id"] = self.request_id
        return body

    def _internal_error(self, exc: BaseException, started: float) -> None:
        """Last resort: a structured 500 that names the request id."""
        obs.counter_add(
            "repro_serve_internal_errors_total", 1,
            "unexpected handler exceptions answered as structured 500s",
            type=type(exc).__name__,
        )
        self._send_json(
            500,
            {"error": {
                "type": "InternalError",
                "message": f"{type(exc).__name__}: {exc}",
                "exit_code": 1, "http_status": 500,
                "request_id": self.request_id,
            }},
        )

    def do_GET(self) -> None:
        self.request_id = uuid.uuid4().hex[:12]
        started = time.monotonic()
        try:
            self._route_get(started)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._internal_error(exc, started)
            self._account("internal", 500, started)

    def do_POST(self) -> None:
        self.request_id = uuid.uuid4().hex[:12]
        started = time.monotonic()
        try:
            self._route_post(started)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._internal_error(exc, started)
            self._account("internal", 500, started)

    # -- GET ----------------------------------------------------------------

    def _route_get(self, started: float) -> None:
        if self.path == "/healthz":
            body = self.service.health()
            code = 200 if body["status"] == "ok" else 503
            self._send_json(code, body)
            self._account("healthz", code, started)
        elif self.path == "/livez":
            # liveness is answering at all: if this handler runs, we live
            self._send_json(200, {"status": "alive"})
            self._account("livez", 200, started)
        elif self.path == "/readyz":
            body = self.service.readiness()
            code = 200 if body["ready"] else 503
            self._send_json(code, body)
            self._account("readyz", code, started)
        elif self.path == "/v1/campaign" or self.path.startswith("/v1/campaign/"):
            self._get_campaign(started)
        elif self.path == "/metrics":
            text = to_prometheus(obs.snapshot()).encode()
            self._send_bytes(200, text, "text/plain; version=0.0.4")
            self._account("metrics", 200, started)
        else:
            self._send_json(
                404, {"error": {"type": "UsageError",
                                "message": f"no route {self.path!r}",
                                "exit_code": 3, "http_status": 404,
                                "request_id": self.request_id}},
            )
            self._account("unknown", 404, started)

    def _get_campaign(self, started: float) -> None:
        """GET /v1/campaign (list) or /v1/campaign/<id> (progress)."""
        manager = self.service.campaigns
        if manager is None:
            exc = CampaignError(
                "campaign orchestration is disabled "
                "(start the service with --campaign-dir)"
            )
            self._send_json(http_status_for(exc), self._error_body(exc))
            self._account("campaign", http_status_for(exc), started)
            return
        suffix = self.path[len("/v1/campaign"):].strip("/")
        if not suffix:
            body = {"campaigns": manager.list_campaigns()}
            self._send_json(200, body)
            self._account("campaign", 200, started)
            return
        status = manager.status(suffix)
        if status is None:
            self._send_json(
                404, {"error": {"type": "UsageError",
                                "message": f"unknown campaign {suffix!r}",
                                "exit_code": 3, "http_status": 404,
                                "request_id": self.request_id}},
            )
            self._account("campaign", 404, started)
            return
        self._send_json(200, status)
        self._account("campaign", 200, started)

    # -- POST ---------------------------------------------------------------

    def _route_post(self, started: float) -> None:
        if self.path == "/v1/campaign":
            self._post_campaign(started)
            return
        route = _ROUTES.get(self.path)
        if route is None:
            self._send_json(
                404, {"error": {"type": "UsageError",
                                "message": f"no route {self.path!r}",
                                "exit_code": 3, "http_status": 404,
                                "request_id": self.request_id}},
            )
            self._account("unknown", 404, started)
            return
        endpoint, validator = route
        try:
            body = self._read_body()
            request = validator(body)
            if endpoint == "simulate":
                endpoint = (
                    "simulate-source" if request.source is not None
                    else "simulate-program"
                )
            result = self.service.submit(endpoint, request)
            self._send_json(200, result)
            self._account(endpoint, 200, started)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            if not isinstance(exc, ReproError):
                obs.counter_add(
                    "repro_serve_internal_errors_total", 1,
                    "unexpected handler exceptions answered as "
                    "structured 500s",
                    type=type(exc).__name__,
                )
            status = http_status_for(exc)
            self._send_json(status, self._error_body(exc))
            self._account(endpoint, status, started)

    def _post_campaign(self, started: float) -> None:
        """POST /v1/campaign: validate, submit to the manager, 202."""
        try:
            request = validate_campaign(self._read_body())
            manager = self.service.campaigns
            if manager is None:
                raise CampaignError(
                    "campaign orchestration is disabled "
                    "(start the service with --campaign-dir)"
                )
            record = manager.submit(
                request.spec, allow_partial=request.allow_partial
            )
            self._send_json(202, record)
            self._account("campaign", 202, started)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            if not isinstance(exc, ReproError):
                obs.counter_add(
                    "repro_serve_internal_errors_total", 1,
                    "unexpected handler exceptions answered as "
                    "structured 500s",
                    type=type(exc).__name__,
                )
            status = http_status_for(exc)
            self._send_json(status, self._error_body(exc))
            self._account("campaign", status, started)

    def _read_body(self):
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise UsageError(
                "a JSON body with a Content-Length header is required"
            ) from None
        limit = self.server.max_body_bytes  # type: ignore[attr-defined]
        if length > limit:
            # drain a bounded amount so a mid-upload client can still
            # read the 413 instead of dying on a broken pipe; anything
            # past the drain cap gets the connection closed under it
            remaining = min(length, max(limit, 1 << 22))
            while remaining > 0:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte ceiling"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise UsageError(f"malformed JSON body: {exc}") from None

    # -- rendering ----------------------------------------------------------

    def _send_json(self, code: int, payload: dict) -> None:
        self._send_bytes(
            code, json.dumps(payload).encode(), "application/json"
        )

    def _send_bytes(self, code: int, body: bytes, content_type: str) -> None:
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if self.request_id != "-":
                self.send_header("X-Request-Id", self.request_id)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client hung up; nothing to salvage

    @staticmethod
    def _account(endpoint: str, code: int, started: float) -> None:
        obs.counter_add(
            "repro_serve_requests_total", 1,
            "requests handled, by endpoint and status",
            endpoint=endpoint, code=str(code),
        )
        obs.observe(
            "repro_serve_request_seconds", time.monotonic() - started,
            "request latency, by endpoint", buckets=DEFAULT_LATENCY_BUCKETS,
            endpoint=endpoint,
        )


class AnalysisServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns one :class:`AnalysisService`."""

    daemon_threads = True
    # socketserver's default listen backlog of 5 resets connections under
    # a concurrent burst; admission control belongs to the bounded queue
    # (429), not the kernel's SYN queue
    request_queue_size = 128

    def __init__(self, config: Optional[ServeConfig] = None,
                 service: Optional[AnalysisService] = None,
                 verbose: bool = False):
        self.config = config or ServeConfig()
        self.service = service or AnalysisService(self.config)
        self.max_body_bytes = self.config.max_body_bytes
        self.verbose = verbose
        super().__init__((self.config.host, self.config.port), _Handler)

    def server_activate(self) -> None:
        """Start listening: enable metrics and warm the service first."""
        obs.enable()  # /metrics must answer even without --metrics
        self.service.start()
        super().server_activate()

    def server_close(self) -> None:
        """Close the listening socket, then stop the service's threads."""
        super().server_close()
        self.service.stop()

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.server_address[:2]
        return host, port


def create_server(config: Optional[ServeConfig] = None,
                  verbose: bool = False) -> AnalysisServer:
    """A bound, warmed server; call ``serve_forever()`` to run it."""
    return AnalysisServer(config, verbose=verbose)


def serve_forever(config: Optional[ServeConfig] = None,
                  verbose: bool = False) -> None:
    """Run the service until interrupted (the ``repro serve`` loop)."""
    server = create_server(config, verbose=verbose)
    host, port = server.address
    print(f"repro serve: listening on http://{host}:{port} "
          f"(workers={server.config.workers}, "
          f"queue-depth={server.config.queue_depth})")
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
