"""Batched analysis service: the library over JSON-over-HTTP.

Submodules:

* :mod:`repro.serve.schemas`  — request validation, the HTTP <-> exit-code
  error mapping, uniform structured error bodies;
* :mod:`repro.serve.handlers` — endpoint logic (pure: request objects in,
  JSON-safe dicts out);
* :mod:`repro.serve.batching` — bounded admission queue (429 backpressure),
  worker threads, the engine micro-batcher over the warm worker pool and
  the runner memo tiers;
* :mod:`repro.serve.server`   — the stdlib ThreadingHTTPServer shell,
  ``/healthz`` and the Prometheus ``/metrics`` scrape.

Everything is stdlib-only; ``repro serve`` is the CLI entry point.
"""

from repro.serve.schemas import (
    HTTP_STATUS,
    LintRequest,
    PadRequest,
    RunBatchRequest,
    SimulateRequest,
    error_body,
    http_status_for,
    validate_lint,
    validate_pad,
    validate_run,
    validate_simulate,
)

_LAZY = {
    "AnalysisService": "repro.serve.batching",
    "ServeConfig": "repro.serve.batching",
    "AnalysisServer": "repro.serve.server",
    "create_server": "repro.serve.server",
    "serve_forever": "repro.serve.server",
}

__all__ = [
    "HTTP_STATUS", "LintRequest", "PadRequest", "RunBatchRequest",
    "SimulateRequest", "error_body", "http_status_for", "validate_lint",
    "validate_pad", "validate_run", "validate_simulate",
    *sorted(_LAZY),
]


def __getattr__(name):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
