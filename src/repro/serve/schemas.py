"""Request validation and error-body schemas for the analysis service.

Every endpoint's JSON body is validated here into a typed request object
before any work is admitted: unknown fields are rejected (a typo'd field
silently ignored is a debugging tarpit), types are checked one field at
a time, and every rejection is a :class:`~repro.errors.UsageError`
carrying the offending field name — the same taxonomy the CLI maps to
exit code 3.

The service's error bodies are uniform across endpoints::

    {"error": {"type": "FrontendError", "message": "line 3:7: ...",
               "exit_code": 2, "http_status": 422}}

``type`` is the library exception class, ``exit_code`` the code the CLI
would have exited with (see :data:`repro.cli.EXIT_CODES`) and
``http_status`` the mapping below — so a service client and a CLI user
read the same failure the same way.

=====  =========================  ======================================
HTTP   class                      meaning
=====  =========================  ======================================
400    UsageError / ConfigError   malformed body, field, or cache shape
400    LintError                  bad rule selection / lint misuse
400    OptimizeError              bad search knobs (beam, budget, ...)
409    GuardError                 strict-mode guardrail violation
409    CampaignError              campaign cannot start/resume (backlog
                                  full, orchestration disabled, ...)
413    PayloadTooLarge            body over the configured ceiling
422    FrontendError              DSL source does not lex/parse/lower
429    QueueFullError             admission queue full — back off
500    ReproError (other)         unexpected library failure
502    EngineError/WorkerCrashed  the execution engine could not finish
504    RunTimeout                 per-request deadline exceeded
=====  =========================  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.errors import (
    CampaignError,
    ConfigError,
    EngineError,
    FrontendError,
    GuardError,
    LintError,
    OptimizeError,
    PayloadTooLarge,
    QueueFullError,
    ReproError,
    RunTimeout,
    StoreCorruption,
    UsageError,
    WorkerCrashed,
)

#: most-specific-first mapping from error class to HTTP status
HTTP_STATUS = (
    (QueueFullError, 429),
    (PayloadTooLarge, 413),
    (RunTimeout, 504),
    (WorkerCrashed, 502),
    (StoreCorruption, 500),
    (EngineError, 502),
    (GuardError, 409),
    (CampaignError, 409),
    (LintError, 400),
    (OptimizeError, 400),
    (FrontendError, 422),
    (UsageError, 400),
    (ConfigError, 400),
    (ReproError, 500),
)

#: hard ceilings a request may not exceed whatever it asks for
MAX_SOURCE_BYTES = 256 * 1024
MAX_BATCH_ITEMS = 256
MAX_TIMEOUT_S = 300.0
MAX_CAMPAIGN_ITEMS_SERVE = 4096


def http_status_for(exc: BaseException) -> int:
    """HTTP status for a library exception (500 for anything unknown)."""
    for klass, status in HTTP_STATUS:
        if isinstance(exc, klass):
            return status
    return 500


def error_body(exc: BaseException) -> dict:
    """The uniform structured error body for one failure."""
    from repro.cli import exit_code_for

    return {
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "exit_code": exit_code_for(exc) if isinstance(exc, ReproError) else 2,
            "http_status": http_status_for(exc),
        }
    }


def parse_byte_size(value, field_name: str) -> int:
    """Parse 16384, "16K" or "1M" into bytes; UsageError otherwise."""
    if isinstance(value, bool):
        raise UsageError(f"{field_name}: expected a byte size, got a boolean")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        text = value.strip().upper()
        factor = 1
        if text.endswith("K"):
            factor, text = 1024, text[:-1]
        elif text.endswith("M"):
            factor, text = 1024 * 1024, text[:-1]
        try:
            return int(text) * factor
        except ValueError:
            pass
    raise UsageError(
        f"{field_name}: expected a byte size like 16384, '16K' or '1M', "
        f"got {value!r}"
    )


# -- field-level checkers ----------------------------------------------------


def _require_dict(body) -> dict:
    if not isinstance(body, dict):
        raise UsageError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    return body


def _reject_unknown(body: dict, known: Tuple[str, ...], endpoint: str) -> None:
    unknown = sorted(set(body) - set(known))
    if unknown:
        raise UsageError(
            f"{endpoint}: unknown field(s) {', '.join(map(repr, unknown))}; "
            f"known: {', '.join(known)}"
        )


def _string(body: dict, name: str, default=None, required: bool = False):
    if name not in body:
        if required:
            raise UsageError(f"missing required field {name!r}")
        return default
    value = body[name]
    if not isinstance(value, str):
        raise UsageError(f"{name}: expected a string, got {type(value).__name__}")
    return value


def _integer(body: dict, name: str, default=None, minimum: Optional[int] = None):
    if name not in body or body[name] is None:
        return default
    value = body[name]
    if isinstance(value, bool) or not isinstance(value, int):
        raise UsageError(
            f"{name}: expected an integer, got {type(value).__name__}"
        )
    if minimum is not None and value < minimum:
        raise UsageError(f"{name}: must be >= {minimum}, got {value}")
    return value


def _boolean(body: dict, name: str, default: bool = False) -> bool:
    if name not in body:
        return default
    value = body[name]
    if not isinstance(value, bool):
        raise UsageError(
            f"{name}: expected a boolean, got {type(value).__name__}"
        )
    return value


def _params(body: dict, name: str = "params") -> Dict[str, int]:
    raw = body.get(name)
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise UsageError(f"{name}: expected an object of NAME -> integer")
    out: Dict[str, int] = {}
    for key, value in raw.items():
        if isinstance(value, bool) or not isinstance(value, int):
            raise UsageError(
                f"{name}.{key}: expected an integer, got {type(value).__name__}"
            )
        out[str(key)] = value
    return out


def parse_cache(body: dict, name: str = "cache") -> CacheConfig:
    """Build the cache geometry a request targets (default 16K/32/1)."""
    raw = body.get(name)
    if raw is None:
        raw = {}
    if not isinstance(raw, dict):
        raise UsageError(f"{name}: expected an object with size/line/assoc")
    _reject_unknown(raw, ("size", "line", "assoc"), name)
    size = parse_byte_size(raw.get("size", "16K"), f"{name}.size")
    line = parse_byte_size(raw.get("line", 32), f"{name}.line")
    assoc = raw.get("assoc", 1)
    if isinstance(assoc, bool) or not isinstance(assoc, int):
        raise UsageError(f"{name}.assoc: expected an integer")
    return CacheConfig(size_bytes=size, line_bytes=line, associativity=assoc)


def _source(body: dict, required: bool = True) -> Optional[str]:
    source = _string(body, "source", required=required)
    if source is not None and len(source.encode()) > MAX_SOURCE_BYTES:
        raise PayloadTooLarge(
            f"source: {len(source.encode())} bytes exceeds the "
            f"{MAX_SOURCE_BYTES}-byte kernel ceiling"
        )
    return source


def _heuristic(body: dict, default: str = "pad") -> str:
    from repro.experiments.runner import HEURISTICS

    name = _string(body, "heuristic", default=default)
    if name not in HEURISTICS:
        raise UsageError(
            f"heuristic: unknown {name!r}; known: {sorted(HEURISTICS)}"
        )
    return name


def _timeout(body: dict, default: Optional[float]) -> Optional[float]:
    if "timeout_s" not in body or body["timeout_s"] is None:
        return default
    value = body["timeout_s"]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise UsageError("timeout_s: expected a number of seconds")
    if not 0 < value <= MAX_TIMEOUT_S:
        raise UsageError(
            f"timeout_s: must be in (0, {MAX_TIMEOUT_S:.0f}], got {value}"
        )
    return float(value)


# -- typed requests ----------------------------------------------------------


@dataclass(frozen=True)
class PadRequest:
    """POST /v1/pad — pad one DSL kernel, report decisions and layout."""

    source: str
    cache: CacheConfig
    heuristic: str = "pad"
    m_lines: int = 4
    params: Dict[str, int] = field(default_factory=dict)
    lint: bool = False
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class OptimizeRequest:
    """POST /v1/optimize — joint inter/intra pad search for one kernel."""

    source: str
    cache: CacheConfig
    heuristic: str = "pad"
    m_lines: int = 4
    beam: int = 8
    budget: int = 64
    objective: str = "miss"
    params: Dict[str, int] = field(default_factory=dict)
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class LintRequest:
    """POST /v1/lint — statically analyze one DSL kernel."""

    source: str
    cache: CacheConfig
    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    params: Dict[str, int] = field(default_factory=dict)
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class SimulateRequest:
    """POST /v1/simulate — miss rates for one kernel or benchmark.

    Exactly one of ``source`` (inline DSL) or ``program`` (registered
    benchmark name) selects the kernel.  Benchmark requests ride the
    engine micro-batcher and the runner's memo tiers; source requests
    are simulated in-process against their own memo.
    """

    cache: CacheConfig
    source: Optional[str] = None
    program: Optional[str] = None
    heuristic: str = "pad"
    size: Optional[int] = None
    m_lines: int = 4
    params: Dict[str, int] = field(default_factory=dict)
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class RunBatchRequest:
    """POST /v1/run — a benchmark sweep through the warm engine pool."""

    items: Tuple[dict, ...]
    cache: CacheConfig
    timeout_s: Optional[float] = None


@dataclass(frozen=True)
class CampaignSubmitRequest:
    """POST /v1/campaign — launch (or attach to) a campaign."""

    spec: object  # repro.campaign.spec.CampaignSpec
    allow_partial: bool = False


def validate_campaign(body) -> CampaignSubmitRequest:
    """Typed ``/v1/campaign`` request: a campaign spec plus options.

    The spec itself is validated by :func:`repro.campaign.spec.parse_spec`
    (same strict unknown-field rejection); the service additionally caps
    the expanded cross-product at :data:`MAX_CAMPAIGN_ITEMS_SERVE` —
    bigger campaigns belong on the CLI, not behind an HTTP endpoint.
    """
    from repro.campaign.spec import parse_spec

    body = _require_dict(body)
    _reject_unknown(body, ("spec", "allow_partial"), "/v1/campaign")
    if "spec" not in body:
        raise UsageError("missing required field 'spec' (a campaign spec)")
    spec = parse_spec(body["spec"])
    if spec.item_count > MAX_CAMPAIGN_ITEMS_SERVE:
        raise PayloadTooLarge(
            f"campaign expands to {spec.item_count} items, over the "
            f"service's {MAX_CAMPAIGN_ITEMS_SERVE}-item ceiling "
            "(run it with 'repro campaign run' instead)"
        )
    return CampaignSubmitRequest(
        spec=spec,
        allow_partial=_boolean(body, "allow_partial"),
    )


def validate_pad(body) -> PadRequest:
    """Typed ``/v1/pad`` request from a decoded JSON body."""
    body = _require_dict(body)
    _reject_unknown(
        body,
        ("source", "cache", "heuristic", "m_lines", "params", "lint",
         "timeout_s"),
        "/v1/pad",
    )
    return PadRequest(
        source=_source(body),
        cache=parse_cache(body),
        heuristic=_heuristic(body),
        m_lines=_integer(body, "m_lines", default=4, minimum=1),
        params=_params(body),
        lint=_boolean(body, "lint"),
        timeout_s=_timeout(body, None),
    )


#: service-side ceilings on the optimize search knobs — a giant beam is
#: a CPU-burn vector through an otherwise-cheap endpoint
MAX_OPTIMIZE_BEAM = 64
MAX_OPTIMIZE_BUDGET = 512


def validate_optimize(body) -> OptimizeRequest:
    """Typed ``/v1/optimize`` request from a decoded JSON body."""
    from repro.optimize import OBJECTIVES

    body = _require_dict(body)
    _reject_unknown(
        body,
        ("source", "cache", "heuristic", "m_lines", "beam", "budget",
         "objective", "params", "timeout_s"),
        "/v1/optimize",
    )
    beam = _integer(body, "beam", default=8, minimum=1)
    if beam > MAX_OPTIMIZE_BEAM:
        raise UsageError(
            f"beam: must be <= {MAX_OPTIMIZE_BEAM}, got {beam}"
        )
    budget = _integer(body, "budget", default=64, minimum=1)
    if budget > MAX_OPTIMIZE_BUDGET:
        raise UsageError(
            f"budget: must be <= {MAX_OPTIMIZE_BUDGET}, got {budget}"
        )
    objective = _string(body, "objective", default="miss")
    if objective not in OBJECTIVES:
        raise UsageError(
            f"objective: unknown {objective!r}; known: {list(OBJECTIVES)}"
        )
    return OptimizeRequest(
        source=_source(body),
        cache=parse_cache(body),
        heuristic=_heuristic(body),
        m_lines=_integer(body, "m_lines", default=4, minimum=1),
        beam=beam,
        budget=budget,
        objective=objective,
        params=_params(body),
        timeout_s=_timeout(body, None),
    )


def validate_lint(body) -> LintRequest:
    """Typed ``/v1/lint`` request from a decoded JSON body."""
    body = _require_dict(body)
    _reject_unknown(
        body,
        ("source", "cache", "select", "ignore", "params", "timeout_s"),
        "/v1/lint",
    )

    def selectors(name: str) -> Tuple[str, ...]:
        raw = body.get(name)
        if raw is None:
            return ()
        if isinstance(raw, str):
            raw = [part.strip() for part in raw.split(",") if part.strip()]
        if not isinstance(raw, list) or not all(
            isinstance(item, str) for item in raw
        ):
            raise UsageError(f"{name}: expected a list of rule IDs/families")
        return tuple(raw)

    return LintRequest(
        source=_source(body),
        cache=parse_cache(body),
        select=selectors("select"),
        ignore=selectors("ignore"),
        params=_params(body),
        timeout_s=_timeout(body, None),
    )


def validate_simulate(body) -> SimulateRequest:
    """Typed ``/v1/simulate`` request (source xor benchmark)."""
    body = _require_dict(body)
    _reject_unknown(
        body,
        ("source", "program", "cache", "heuristic", "size", "m_lines",
         "params", "timeout_s"),
        "/v1/simulate",
    )
    source = _source(body, required=False)
    program = _string(body, "program")
    if (source is None) == (program is None):
        raise UsageError(
            "/v1/simulate: exactly one of 'source' (inline DSL) or "
            "'program' (registered benchmark) is required"
        )
    if program is not None:
        from repro.bench.suites import get_spec

        try:
            get_spec(program)
        except ReproError as exc:
            raise UsageError(f"program: {exc}") from None
    return SimulateRequest(
        cache=parse_cache(body),
        source=source,
        program=program,
        heuristic=_heuristic(body),
        size=_integer(body, "size", minimum=1),
        m_lines=_integer(body, "m_lines", default=4, minimum=1),
        params=_params(body),
        timeout_s=_timeout(body, None),
    )


def validate_run(body) -> RunBatchRequest:
    """Typed ``/v1/run`` sweep request; every item is checked."""
    body = _require_dict(body)
    _reject_unknown(body, ("items", "cache", "timeout_s"), "/v1/run")
    raw_items = body.get("items")
    if not isinstance(raw_items, list) or not raw_items:
        raise UsageError("items: expected a non-empty list of run items")
    if len(raw_items) > MAX_BATCH_ITEMS:
        raise PayloadTooLarge(
            f"items: {len(raw_items)} items exceeds the "
            f"{MAX_BATCH_ITEMS}-item ceiling"
        )
    items = []
    for index, item in enumerate(raw_items):
        if not isinstance(item, dict):
            raise UsageError(f"items[{index}]: expected an object")
        _reject_unknown(
            item, ("program", "heuristic", "size", "m_lines"),
            f"items[{index}]",
        )
        try:
            program = _string(item, "program", required=True)
        except UsageError as exc:
            raise UsageError(f"items[{index}]: {exc}") from None
        from repro.bench.suites import get_spec

        try:
            get_spec(program)
        except ReproError as exc:
            raise UsageError(f"items[{index}].program: {exc}") from None
        items.append(
            {
                "program": program,
                "heuristic": _heuristic(item),
                "size": _integer(item, "size", minimum=1),
                "m_lines": _integer(item, "m_lines", default=4, minimum=1),
            }
        )
    return RunBatchRequest(
        items=tuple(items),
        cache=parse_cache(body),
        timeout_s=_timeout(body, None),
    )
