"""Campaign orchestration endpoint for the analysis service.

``POST /v1/campaign`` submissions bypass the micro-batcher's admission
queue — a campaign is minutes of work, not a 30-second request — and
land here instead.  The :class:`CampaignManager` runs campaigns
**serially** on one executor thread against its own small
:class:`~repro.engine.pool.WorkerPool` (the pool is single-owner by
design, so the batcher's pool is never shared), writing each campaign's
durable state under ``<root>/<campaign_id>/``.

Submission is idempotent by construction: the campaign id is the
content address of the spec, so re-POSTing the same spec attaches to
the running campaign or reports the finished one instead of launching a
duplicate.  A campaign found on disk in a non-finished state (the
previous server died mid-campaign) is resumed, not restarted — the
coordinator's journal + disk tier make that free of duplicated work.

Progress polling (``GET /v1/campaign/<id>``) replays the campaign's
journal from disk, so it works for live campaigns, finished ones, and
campaigns orphaned by a previous server process alike.
"""

from __future__ import annotations

import pathlib
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.campaign.coordinator import (
    JOURNAL_FILENAME,
    RESULTS_FILENAME,
    Coordinator,
)
from repro.campaign.plan import compile_plan
from repro.campaign.spec import CampaignSpec
from repro.campaign.state import replay_journal
from repro.engine.journal import read_journal
from repro.errors import CampaignError
from repro.obs import runtime as obs

#: manager-level campaign states (the journal tracks item states)
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class CampaignManager:
    """Serial campaign executor with durable per-campaign state."""

    def __init__(self, root, jobs: int = 2, max_queued: int = 4):
        self.root = pathlib.Path(root)
        self.jobs = max(1, jobs)
        self.max_queued = max(1, max_queued)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: deque = deque()  # (CampaignSpec, allow_partial)
        self._states: Dict[str, Dict[str, object]] = {}
        self._thread: Optional[threading.Thread] = None
        self._pool = None
        self._stopping = threading.Event()

    # -- life cycle ---------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker pool and the serial campaign thread."""
        if self._thread is not None:
            return
        from repro.engine.pool import WorkerPool

        self.root.mkdir(parents=True, exist_ok=True)
        self._pool = WorkerPool(jobs=self.jobs)
        self._stopping.clear()
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-campaigns", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the campaign thread and tear down the worker pool."""
        if self._thread is None:
            return
        self._stopping.set()
        with self._work:
            self._work.notify_all()
        self._thread.join(timeout=10)
        self._thread = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # -- submission ----------------------------------------------------------

    def submit(self, spec: CampaignSpec, allow_partial: bool = False) -> dict:
        """Queue one campaign (idempotently); returns its status record.

        Raises :class:`~repro.errors.CampaignError` when the manager is
        not running or its backlog is full — the latter surfaces as a
        409, telling the client to poll and retry rather than pile up
        unbounded campaign state on disk.
        """
        if self._thread is None:
            raise CampaignError(
                "campaign orchestration is disabled "
                "(start the service with a campaign directory)"
            )
        campaign_id = spec.campaign_id
        with self._lock:
            known = self._states.get(campaign_id)
            if known is not None and known["state"] in (QUEUED, RUNNING):
                return dict(known)
            if self._finished_on_disk(campaign_id):
                record = self._record(
                    campaign_id, DONE, spec.name, note="already complete"
                )
                return dict(record)
            if len(self._queue) >= self.max_queued:
                raise CampaignError(
                    f"campaign backlog full ({self.max_queued} queued); "
                    "retry after the running campaign finishes"
                )
            record = self._record(campaign_id, QUEUED, spec.name)
            record["allow_partial"] = allow_partial
            self._queue.append((spec, allow_partial))
            obs.counter_add(
                "repro_serve_campaigns_total", 1,
                "campaigns accepted for orchestration",
            )
            self._work.notify_all()
            return dict(record)

    # -- status --------------------------------------------------------------

    def status(self, campaign_id: str) -> Optional[dict]:
        """Status + journal-replayed progress, or None for an unknown id."""
        with self._lock:
            record = self._states.get(campaign_id)
            body = dict(record) if record else None
        workdir = self.root / campaign_id
        journal = workdir / JOURNAL_FILENAME
        if body is None:
            if not journal.exists():
                return None
            # a campaign from a previous server process, known only on disk
            body = {"campaign": campaign_id, "state": self._disk_state(campaign_id)}
        if journal.exists():
            try:
                body["progress"] = replay_journal(
                    read_journal(journal), campaign_id
                ).describe()
            except CampaignError:
                pass  # journal exists but has no campaign_start yet
        results = workdir / RESULTS_FILENAME
        if body.get("state") == DONE and results.exists():
            import json

            try:
                body["results"] = json.loads(results.read_text())["results"]
            except (ValueError, KeyError, OSError):
                body["results"] = None
        return body

    def list_campaigns(self) -> List[dict]:
        """Every campaign this manager knows, in-memory or on disk."""
        with self._lock:
            known = {cid: dict(rec) for cid, rec in self._states.items()}
        if self.root.exists():
            for entry in sorted(self.root.iterdir()):
                if entry.is_dir() and (entry / JOURNAL_FILENAME).exists():
                    known.setdefault(
                        entry.name,
                        {"campaign": entry.name,
                         "state": self._disk_state(entry.name)},
                    )
        return [known[cid] for cid in sorted(known)]

    def readiness(self) -> dict:
        """The campaign component of ``GET /readyz``."""
        with self._lock:
            queued = len(self._queue)
            running = any(
                rec["state"] == RUNNING for rec in self._states.values()
            )
        return {
            "enabled": self._thread is not None,
            "queued": queued,
            "backlog": self.max_queued,
            "running": running,
            "saturated": queued >= self.max_queued,
        }

    # -- internals -----------------------------------------------------------

    def _record(self, campaign_id: str, state: str, name=None, **extra) -> dict:
        record = self._states.setdefault(
            campaign_id, {"campaign": campaign_id}
        )
        record["state"] = state
        if name is not None:
            record["name"] = name
        record.update(extra)
        record["updated_ts"] = round(time.time(), 3)
        return record

    def _finished_on_disk(self, campaign_id: str) -> bool:
        return self._disk_state(campaign_id) == DONE

    def _disk_state(self, campaign_id: str) -> str:
        workdir = self.root / campaign_id
        journal = workdir / JOURNAL_FILENAME
        if not journal.exists():
            return "unknown"
        try:
            state = replay_journal(read_journal(journal), campaign_id)
        except CampaignError:
            return "unknown"
        if state.finished and (workdir / RESULTS_FILENAME).exists():
            counts = state.counts()
            return DONE if counts["failed"] == 0 else FAILED
        return "interrupted"

    def _run_loop(self) -> None:
        while not self._stopping.is_set():
            with self._work:
                while not self._queue and not self._stopping.is_set():
                    self._work.wait(timeout=0.2)
                if self._stopping.is_set():
                    return
                spec, allow_partial = self._queue.popleft()
            campaign_id = spec.campaign_id
            with self._lock:
                self._record(campaign_id, RUNNING, spec.name)
            try:
                plan = compile_plan(spec)
                workdir = self.root / campaign_id
                resume = (workdir / JOURNAL_FILENAME).exists()
                report = Coordinator(
                    plan,
                    workdir,
                    pool=self._pool,
                    jobs=self.jobs,
                    allow_partial=allow_partial,
                ).run(resume=resume)
                with self._lock:
                    self._record(
                        campaign_id,
                        DONE if report.ok else FAILED,
                        spec.name,
                        report=report.describe(),
                    )
            except Exception as exc:
                with self._lock:
                    self._record(
                        campaign_id, FAILED, spec.name,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                obs.counter_add(
                    "repro_serve_campaign_failures_total", 1,
                    "campaigns that ended in failure",
                )
