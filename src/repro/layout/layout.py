"""Memory layouts.

A :class:`MemoryLayout` records, for one program, everything the padding
transformations decide:

* per-array **padded dimension sizes** (intra-variable padding), and
* per-variable **base addresses** (inter-variable padding / placement).

Layouts never mutate declarations; array strides are recomputed from the
padded sizes on demand.  Every size recorded through the public API is
also mirrored into a committed-size witness
(:meth:`MemoryLayout.committed_dim_sizes`) so the guard can detect a
layout whose working sizes were corrupted behind the API's back — e.g. a
padded dimension shrunk back toward (but not below) its declared size,
which leaves strides self-consistent and causes no overlap.  :func:`original_layout` reproduces the untouched
program: variables laid out contiguously in declaration order, aligned to
their element size — the baseline every experiment compares against.

Placement is performed on :class:`PlacementUnit` granularity: normally one
variable per unit, but members of an unsplittable COMMON block form a
single unit whose internal order is fixed (the compiler may move the block,
not its members).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import LayoutError
from repro.ir.arrays import ArrayDecl, ScalarDecl
from repro.ir.program import Program


def _align(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    return (value + alignment - 1) // alignment * alignment


@dataclass
class PlacementUnit:
    """A group of variables placed as one contiguous block.

    ``members`` lists (name, offset-within-unit) pairs; ``size_bytes`` is
    the total extent of the unit given the current padded dim sizes.
    """

    names: Tuple[str, ...]
    offsets: Tuple[int, ...]
    size_bytes: int
    alignment: int

    @property
    def label(self) -> str:
        """Display name: the single variable, or the block membership."""
        if len(self.names) == 1:
            return self.names[0]
        return "{" + ",".join(self.names) + "}"


class MemoryLayout:
    """Base addresses plus padded dimension sizes for one program."""

    def __init__(self, prog: Program):
        self.prog = prog
        self._dim_sizes: Dict[str, Tuple[int, ...]] = {}
        self._committed_sizes: Dict[str, Tuple[int, ...]] = {}
        self._bases: Dict[str, int] = {}
        for decl in prog.arrays:
            self._dim_sizes[decl.name] = decl.dim_sizes
            self._committed_sizes[decl.name] = decl.dim_sizes

    # -- intra-variable padding ------------------------------------------

    def dim_sizes(self, name: str) -> Tuple[int, ...]:
        """Current (possibly padded) dimension sizes of an array."""
        try:
            return self._dim_sizes[name]
        except KeyError:
            raise LayoutError(f"no array {name!r} in layout") from None

    def set_dim_sizes(self, name: str, sizes: Sequence[int]) -> None:
        """Record padded dimension sizes for an array.

        Sizes may only grow: padding never shrinks an array.
        """
        decl = self.prog.array(name)
        sizes = tuple(int(s) for s in sizes)
        if len(sizes) != decl.rank:
            raise LayoutError(
                f"array {name!r}: expected {decl.rank} sizes, got {len(sizes)}"
            )
        for new, old in zip(sizes, decl.dim_sizes):
            if new < old:
                raise LayoutError(
                    f"array {name!r}: padding cannot shrink a dimension "
                    f"({old} -> {new})"
                )
        self._dim_sizes[name] = sizes
        self._committed_sizes[name] = sizes

    def pad_dim(self, name: str, dim_index: int, elements: int) -> None:
        """Grow one dimension of an array by ``elements``."""
        sizes = list(self.dim_sizes(name))
        if not 0 <= dim_index < len(sizes):
            raise LayoutError(f"array {name!r} has no dimension {dim_index}")
        if elements < 0:
            raise LayoutError("pad amount must be nonnegative")
        sizes[dim_index] += elements
        self.set_dim_sizes(name, sizes)

    def committed_dim_sizes(self, name: str) -> Tuple[int, ...]:
        """The last dimension sizes recorded through the public API.

        A sound layout always has ``committed_dim_sizes(name) ==
        dim_sizes(name)``; a disagreement means the working sizes were
        corrupted without going through :meth:`set_dim_sizes` (a buggy
        or sabotaged driver) and the guard flags it.
        """
        try:
            return self._committed_sizes[name]
        except KeyError:
            raise LayoutError(f"no array {name!r} in layout") from None

    def intra_pads(self, name: str) -> Tuple[int, ...]:
        """Per-dimension element increments relative to the declaration."""
        decl = self.prog.array(name)
        return tuple(
            cur - orig for cur, orig in zip(self.dim_sizes(name), decl.dim_sizes)
        )

    # -- sizes and strides ----------------------------------------------------

    def size_bytes(self, name: str) -> int:
        """Padded size in bytes of a variable (array or scalar)."""
        decl = self.prog.decl(name)
        if isinstance(decl, ScalarDecl):
            return decl.size_bytes
        total = decl.element_size
        for size in self.dim_sizes(name):
            total *= size
        return total

    def strides(self, name: str) -> Tuple[int, ...]:
        """Column-major byte strides of an array under this layout."""
        decl = self.prog.array(name)
        return decl.strides(self.dim_sizes(name))

    def column_size_bytes(self, name: str) -> int:
        """Padded column size in bytes (the paper's Col_s for this layout)."""
        decl = self.prog.array(name)
        return self.dim_sizes(name)[0] * decl.element_size

    # -- base addresses --------------------------------------------------------

    def set_base(self, name: str, address: int) -> None:
        """Record the base address of a variable."""
        if not self.prog.has_decl(name):
            raise LayoutError(f"no variable {name!r} in program")
        if address < 0:
            raise LayoutError(f"base address must be nonnegative, got {address}")
        self._bases[name] = address

    def base(self, name: str) -> int:
        """Base address of a variable."""
        try:
            return self._bases[name]
        except KeyError:
            raise LayoutError(f"variable {name!r} has no assigned base") from None

    def has_base(self, name: str) -> bool:
        """True when a variable has been placed."""
        return name in self._bases

    @property
    def placed_names(self) -> List[str]:
        """Names placed so far, in placement order."""
        return list(self._bases)

    # -- derived whole-layout facts -----------------------------------------

    def end_address(self) -> int:
        """One past the highest byte used by any placed variable."""
        end = 0
        for name, base in self._bases.items():
            end = max(end, base + self.size_bytes(name))
        return end

    def total_declared_bytes(self) -> int:
        """Sum of padded variable sizes (excludes inter-variable gaps)."""
        return sum(self.size_bytes(d.name) for d in self.prog.decls)

    def validate(self) -> None:
        """Check that every variable is placed and no two overlap."""
        intervals = []
        for decl in self.prog.decls:
            if decl.name not in self._bases:
                raise LayoutError(f"variable {decl.name!r} was never placed")
            base = self._bases[decl.name]
            intervals.append((base, base + self.size_bytes(decl.name), decl.name))
        intervals.sort()
        for (s0, e0, n0), (s1, e1, n1) in zip(intervals, intervals[1:]):
            if s1 < e0:
                raise LayoutError(
                    f"variables {n0!r} [{s0},{e0}) and {n1!r} [{s1},{e1}) overlap"
                )

    def copy(self) -> "MemoryLayout":
        """An independent copy (used by heuristics to test placements)."""
        dup = MemoryLayout(self.prog)
        dup._dim_sizes = dict(self._dim_sizes)
        dup._committed_sizes = dict(self._committed_sizes)
        dup._bases = dict(self._bases)
        return dup

    def __repr__(self) -> str:
        placed = len(self._bases)
        return f"MemoryLayout({self.prog.name!r}: {placed} placed, end={self.end_address()})"


def placement_units(prog: Program, layout: MemoryLayout) -> List[PlacementUnit]:
    """Group the program's variables into placement units.

    Declaration order is preserved.  Members of an unsplittable COMMON
    block collapse into one unit at the position of the first member; their
    intra-unit offsets follow declaration order with element-size
    alignment (Fortran sequence association).
    """
    units: List[PlacementUnit] = []
    blocks: Dict[str, int] = {}
    for decl in prog.decls:
        block = None
        if isinstance(decl, ArrayDecl) and decl.common_block and not decl.common_splittable:
            block = decl.common_block
        align = (
            decl.element_type.size_bytes
            if isinstance(decl, (ArrayDecl, ScalarDecl))
            else 1
        )
        if block is None:
            units.append(
                PlacementUnit(
                    names=(decl.name,),
                    offsets=(0,),
                    size_bytes=layout.size_bytes(decl.name),
                    alignment=align,
                )
            )
        elif block in blocks:
            unit = units[blocks[block]]
            offset = _align(unit.size_bytes, align)
            units[blocks[block]] = PlacementUnit(
                names=unit.names + (decl.name,),
                offsets=unit.offsets + (offset,),
                size_bytes=offset + layout.size_bytes(decl.name),
                alignment=max(unit.alignment, align),
            )
        else:
            blocks[block] = len(units)
            units.append(
                PlacementUnit(
                    names=(decl.name,),
                    offsets=(0,),
                    size_bytes=layout.size_bytes(decl.name),
                    alignment=align,
                )
            )
    return units


def place_unit(layout: MemoryLayout, unit: PlacementUnit, address: int) -> None:
    """Assign base addresses to every member of a unit."""
    for name, offset in zip(unit.names, unit.offsets):
        layout.set_base(name, address + offset)


def original_layout(prog: Program) -> MemoryLayout:
    """The unpadded baseline layout: declaration order, natural alignment."""
    layout = MemoryLayout(prog)
    cursor = 0
    for unit in placement_units(prog, layout):
        cursor = _align(cursor, unit.alignment)
        place_unit(layout, unit, cursor)
        cursor += unit.size_bytes
    layout.validate()
    return layout
