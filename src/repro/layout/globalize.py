"""Globalization (paper, Section 4.1).

Before padding, the SUIF implementation gives the compiler control over
base addresses:

1. local arrays and structures are promoted to global scope;
2. Fortran COMMON blocks are split into separate variables where sequence
   association permits; otherwise they stay one indivisible block;
3. all globals become fields of one large structure the compiler reorders
   and pads.

In this reproduction, step 3 *is* the :class:`MemoryLayout`; this module
performs steps 1 and 2 as a program-to-program transformation and reports
what it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.ir.arrays import ArrayDecl
from repro.ir.program import Program


@dataclass
class GlobalizationReport:
    """What globalization changed."""

    promoted_locals: List[str] = field(default_factory=list)
    split_common_members: List[str] = field(default_factory=list)
    kept_common_blocks: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        """True when any declaration was rewritten."""
        return bool(self.promoted_locals or self.split_common_members)


def globalize(prog: Program) -> "tuple[Program, GlobalizationReport]":
    """Promote locals and split splittable COMMON blocks.

    Returns a new program (declarations rewritten, body shared) and a
    report.  Formal parameters are untouched — they represent variables
    declared elsewhere and need no promotion.
    """
    report = GlobalizationReport()
    new_decls = []
    kept_blocks = set()
    for decl in prog.decls:
        if not isinstance(decl, ArrayDecl):
            new_decls.append(decl)
            continue
        is_local = decl.is_local
        block = decl.common_block
        splittable = decl.common_splittable
        if decl.is_parameter:
            new_decls.append(decl)
            continue
        changed = False
        if is_local:
            report.promoted_locals.append(decl.name)
            is_local = False
            changed = True
        if block is not None and splittable:
            report.split_common_members.append(decl.name)
            block = None
            changed = True
        elif block is not None:
            kept_blocks.add(block)
        if changed:
            decl = ArrayDecl(
                decl.name,
                decl.dims,
                decl.element_type,
                is_parameter=decl.is_parameter,
                storage_association=decl.storage_association,
                common_block=block,
                common_splittable=splittable,
                is_local=is_local,
            )
        new_decls.append(decl)
    report.kept_common_blocks = sorted(kept_blocks)
    return prog.with_decls(new_decls), report
