"""Memory layout: base-address assignment, padded dimension sizes,
globalization."""

from repro.layout.globalize import GlobalizationReport, globalize
from repro.layout.layout import (
    MemoryLayout,
    PlacementUnit,
    original_layout,
    place_unit,
    placement_units,
)

__all__ = [
    "GlobalizationReport",
    "MemoryLayout",
    "PlacementUnit",
    "globalize",
    "original_layout",
    "place_unit",
    "placement_units",
]
