"""Cache configurations.

The paper's base configuration is a 16K direct-mapped cache with 32-byte
lines (SHADE simulation of a SPARC-like machine); experiments vary the size
(2K/4K/8K/16K), the associativity (1/2/4/16-way) and, for heuristic
parameters, the minimum separation M.  A "16-way associative cache is
simulated in place of a fully-associative cache" — :func:`fully_associative`
mirrors that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level.

    Write policy is write-allocate/write-back, as assumed by the paper
    ("our transformations assume a write-allocating/write-back cache, so
    any two accesses may conflict, whether write or read").
    """

    size_bytes: int
    line_bytes: int = 32
    associativity: int = 1
    write_allocate: bool = True
    write_back: bool = True

    def __post_init__(self):
        if not _is_pow2(self.size_bytes):
            raise ConfigError(f"cache size must be a power of two, got {self.size_bytes}")
        if not _is_pow2(self.line_bytes):
            raise ConfigError(f"line size must be a power of two, got {self.line_bytes}")
        if self.line_bytes > self.size_bytes:
            raise ConfigError(
                f"line size {self.line_bytes} exceeds cache size {self.size_bytes}"
            )
        if self.associativity < 1:
            raise ConfigError(
                f"associativity must be at least 1, got {self.associativity}"
            )
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ConfigError(
                f"cache of {self.size_bytes}B cannot be divided into "
                f"{self.associativity}-way sets of {self.line_bytes}B lines"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_lines // self.associativity

    @property
    def is_direct_mapped(self) -> bool:
        """True for a 1-way cache."""
        return self.associativity == 1

    @property
    def is_fully_associative(self) -> bool:
        """True when there is a single set."""
        return self.num_sets == 1

    def with_associativity(self, ways: int) -> "CacheConfig":
        """Same size and line size, different associativity."""
        return CacheConfig(
            self.size_bytes,
            self.line_bytes,
            ways,
            self.write_allocate,
            self.write_back,
        )

    def with_size(self, size_bytes: int) -> "CacheConfig":
        """Same line size and associativity, different capacity."""
        return CacheConfig(
            size_bytes,
            self.line_bytes,
            self.associativity,
            self.write_allocate,
            self.write_back,
        )

    def describe(self) -> str:
        """Short human-readable label, e.g. ``16K DM 32B``."""
        size = (
            f"{self.size_bytes // 1024}K" if self.size_bytes % 1024 == 0 else f"{self.size_bytes}B"
        )
        assoc = "DM" if self.is_direct_mapped else f"{self.associativity}-way"
        if self.is_fully_associative:
            assoc = "FA"
        return f"{size} {assoc} {self.line_bytes}B"


def base_cache() -> CacheConfig:
    """The paper's base configuration: 16K direct-mapped, 32B lines."""
    return CacheConfig(size_bytes=16 * 1024, line_bytes=32, associativity=1)


def direct_mapped(size_bytes: int, line_bytes: int = 32) -> CacheConfig:
    """A direct-mapped cache of the given size."""
    return CacheConfig(size_bytes=size_bytes, line_bytes=line_bytes, associativity=1)


def set_associative(size_bytes: int, ways: int, line_bytes: int = 32) -> CacheConfig:
    """A k-way set-associative cache."""
    return CacheConfig(size_bytes=size_bytes, line_bytes=line_bytes, associativity=ways)


def fully_associative(size_bytes: int, line_bytes: int = 32) -> CacheConfig:
    """A fully associative cache (one set)."""
    ways = size_bytes // line_bytes
    return CacheConfig(size_bytes=size_bytes, line_bytes=line_bytes, associativity=ways)


PAPER_CACHE_SIZES = (2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024)
"""Cache sizes swept in Figures 11, 12 and 14."""

PAPER_ASSOCIATIVITIES = (1, 2, 4, 16)
"""Associativities appearing in Figures 9, 10 and 16."""
