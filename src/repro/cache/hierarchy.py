"""Multi-level cache hierarchies.

The paper notes its technique "can easily be generalized for multilevel
caches": compute conflict distances for each configuration and pad when any
distance is below the corresponding line size.  This module provides the
simulation side: an inclusive hierarchy where L1 misses are replayed
against L2 (and so on), so multi-level padding decisions can be validated
experimentally.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.fastsim import make_simulator
from repro.cache.stats import CacheStats
from repro.errors import SimulationError


class CacheHierarchy:
    """A stack of cache levels; accesses filter down on misses."""

    def __init__(self, configs: Sequence[CacheConfig]):
        if not configs:
            raise SimulationError("hierarchy needs at least one level")
        for upper, lower in zip(configs, configs[1:]):
            if lower.size_bytes < upper.size_bytes:
                raise SimulationError(
                    "cache levels must be ordered smallest (L1) to largest"
                )
        self.levels = [make_simulator(c) for c in configs]

    def reset(self) -> None:
        """Clear every level."""
        for level in self.levels:
            level.reset()

    def access(self, address: int, is_write: bool = False) -> int:
        """One access; returns the number of levels that missed."""
        missed = self.access_chunk([address], [is_write])
        return int(missed[0])

    def access_chunk(
        self,
        addresses: Sequence[int],
        writes: Optional[Sequence[bool]] = None,
    ) -> np.ndarray:
        """Simulate a chunk; returns per-access count of levels missed."""
        addrs = np.asarray(addresses, dtype=np.int64)
        wr = (
            np.zeros(len(addrs), dtype=bool)
            if writes is None
            else np.asarray(writes, dtype=bool)
        )
        depth = np.zeros(len(addrs), dtype=np.int64)
        cur_addrs, cur_writes = addrs, wr
        cur_index = np.arange(len(addrs))
        for level in self.levels:
            if len(cur_addrs) == 0:
                break
            misses = level.access_chunk(cur_addrs, cur_writes)
            depth[cur_index[misses]] += 1
            cur_addrs = cur_addrs[misses]
            cur_writes = cur_writes[misses]
            cur_index = cur_index[misses]
        return depth

    def stats(self, level: int = 0) -> CacheStats:
        """Statistics of one level (0 = L1)."""
        return self.levels[level].stats

    def all_stats(self) -> List[CacheStats]:
        """Statistics of every level, L1 first."""
        return [level.stats for level in self.levels]
