"""Cache simulation substrate (replaces the paper's SHADE setup)."""

from repro.cache.config import (
    PAPER_ASSOCIATIVITIES,
    PAPER_CACHE_SIZES,
    CacheConfig,
    base_cache,
    direct_mapped,
    fully_associative,
    set_associative,
)
from repro.cache.fastsim import FastDirectMapped, FastSetAssociative, make_simulator
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.sim import ReferenceCache
from repro.cache.stats import (
    CacheStats,
    MissBreakdown,
    classify_misses,
    miss_rate_improvement,
)

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "FastDirectMapped",
    "FastSetAssociative",
    "MissBreakdown",
    "PAPER_ASSOCIATIVITIES",
    "PAPER_CACHE_SIZES",
    "ReferenceCache",
    "base_cache",
    "classify_misses",
    "direct_mapped",
    "fully_associative",
    "make_simulator",
    "miss_rate_improvement",
    "set_associative",
]
