"""Cache statistics and miss classification.

:class:`CacheStats` accumulates accesses/hits/misses plus write-back
traffic.  :func:`classify_misses` implements the standard 3C decomposition
the paper's discussion relies on: conflict misses are the misses a cache
suffers beyond those of a fully associative cache of the same capacity
(cold misses are first-touches of a line).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Counters for one simulated cache."""

    accesses: int = 0
    misses: int = 0
    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    writebacks: int = 0
    cold_misses: int = 0

    @property
    def hits(self) -> int:
        """Number of hits."""
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when there were no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def miss_rate_pct(self) -> float:
        """Miss rate as a percentage, the unit of the paper's figures."""
        return 100.0 * self.miss_rate

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Sum two counter sets (used when simulating in chunks)."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            read_misses=self.read_misses + other.read_misses,
            write_misses=self.write_misses + other.write_misses,
            writebacks=self.writebacks + other.writebacks,
            cold_misses=self.cold_misses + other.cold_misses,
        )

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.accesses} accesses, {self.misses} misses "
            f"({self.miss_rate_pct:.2f}%)"
        )


@dataclass(frozen=True)
class MissBreakdown:
    """3C decomposition of a cache's misses."""

    total: int
    cold: int
    capacity: int
    conflict: int

    @property
    def conflict_fraction(self) -> float:
        """Share of all misses that are conflict misses."""
        if self.total == 0:
            return 0.0
        return self.conflict / self.total


def classify_misses(stats: CacheStats, fully_assoc_stats: CacheStats) -> MissBreakdown:
    """3C decomposition given the same trace on a fully associative cache.

    * cold = first touches (identical for both caches);
    * capacity = fully-associative misses beyond cold;
    * conflict = extra misses of the real cache over fully associative.

    Conflict can be slightly negative in pathological LRU cases (Belady
    anomalies); it is clamped at 0 as is conventional.
    """
    cold = stats.cold_misses
    capacity = max(0, fully_assoc_stats.misses - cold)
    conflict = max(0, stats.misses - fully_assoc_stats.misses)
    return MissBreakdown(
        total=stats.misses, cold=cold, capacity=capacity, conflict=conflict
    )


def miss_rate_improvement(original: CacheStats, optimized: CacheStats) -> float:
    """The paper's "miss rate improvement" in percentage points.

    "Reducing the cache miss rate from 10% to 8% would yield an improvement
    of 2%"; degradations are negative.
    """
    return original.miss_rate_pct - optimized.miss_rate_pct
