"""Fast cache engines for trace-volume simulation.

Two engines, both chunk-oriented (the trace interpreter produces numpy
address chunks) and both exact — property tests check them access-for-access
against :class:`repro.cache.sim.ReferenceCache`:

* :class:`FastDirectMapped` — fully vectorized.  A direct-mapped access
  hits iff the previous access to its set touched the same line, so a
  stable sort by set index turns hit detection into a shifted comparison.
  Residency *runs* (maximal same-line stretches within a set) also give
  exact write-back accounting via ``reduceat``.

* :class:`FastSetAssociative` — groups each chunk's accesses by set and
  runs a tight per-set LRU loop.  Used for the 2/4/16-way configurations.

Cold misses are counted as distinct cache lines ever touched (a first
touch misses in any cache).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.instrument import record_chunk
from repro.cache.sim import ReferenceCache
from repro.cache.stats import CacheStats
from repro.errors import SimulationError
from repro.obs.runtime import is_enabled as _obs_enabled


def make_simulator(config: CacheConfig):
    """The fastest exact engine for a configuration.

    The vectorized engines assume the paper's write-allocate/write-back
    policy (its transformations do too); exotic policies fall back to the
    reference simulator, which implements them exactly.
    """
    if not (config.write_allocate and config.write_back):
        return ReferenceCache(config)
    if config.is_direct_mapped:
        return FastDirectMapped(config)
    return FastSetAssociative(config)


#: "Empty set" sentinel for the direct-mapped resident-line table.  Must
#: be a value no real access can produce as a line address: -1 would be
#: wrong, since traces over invalid (out-of-bounds) subscripts reach
#: negative addresses and line -1 is attainable.
_EMPTY_LINE = np.iinfo(np.int64).min


def _as_chunk(addresses, writes, length_check: bool = True):
    addrs = np.ascontiguousarray(addresses, dtype=np.int64)
    if writes is None:
        wr = np.zeros(addrs.shape, dtype=bool)
    else:
        wr = np.ascontiguousarray(writes, dtype=bool)
    if length_check and addrs.shape != wr.shape:
        raise SimulationError(
            f"address/write chunk shape mismatch: {addrs.shape} vs {wr.shape}"
        )
    return addrs, wr


class FastDirectMapped:
    """Vectorized direct-mapped cache."""

    engine_label = "fast_direct"

    def __init__(self, config: CacheConfig):
        if not config.is_direct_mapped:
            raise SimulationError("FastDirectMapped requires associativity 1")
        self.config = config
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        # Resident line address per set; _EMPTY_LINE = empty.  Parallel
        # dirty flags.
        self._resident = np.full(config.num_sets, _EMPTY_LINE, dtype=np.int64)
        self._dirty = np.zeros(config.num_sets, dtype=bool)
        self._seen_lines: set = set()

    def _set_indices(self, lines: np.ndarray) -> np.ndarray:
        """Map line addresses to set indices (modulo placement).

        Subclasses may override to model alternative placement functions
        (e.g. XOR-based hashing; see repro.extensions.xorcache).
        """
        return lines & self._set_mask

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.stats = CacheStats()
        self._resident.fill(_EMPTY_LINE)
        self._dirty.fill(False)
        self._seen_lines = set()

    def access(self, address: int, is_write: bool = False) -> bool:
        """Single-access convenience entry point."""
        return bool(self.access_chunk([address], [is_write])[0])

    def access_stream(self, chunks) -> CacheStats:
        """Drain an iterable of (addresses, writes) chunks; returns stats.

        The batch entry point the trace interpreter and JIT feed: block
        generators hand whole ``chunk_target``-sized blocks straight in.
        """
        for addrs, writes in chunks:
            self.access_chunk(addrs, writes)
        return self.stats

    def access_chunk(
        self,
        addresses: Sequence[int],
        writes: Optional[Sequence[bool]] = None,
    ) -> np.ndarray:
        """Simulate a chunk; returns the per-access miss mask."""
        addrs, wr = _as_chunk(addresses, writes)
        n = len(addrs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        t0 = time.perf_counter() if _obs_enabled() else None
        lines = addrs >> self._line_shift
        sets = self._set_indices(lines)

        order = np.argsort(sets, kind="stable")
        s_sets = sets[order]
        s_lines = lines[order]
        s_writes = wr[order]

        # A sorted-order access hits iff it continues the previous access
        # in the same set with the same line; the first access of each
        # set-group instead compares against the carried-in resident line.
        same_prev = np.zeros(n, dtype=bool)
        if n > 1:
            same_prev[1:] = (s_sets[1:] == s_sets[:-1]) & (s_lines[1:] == s_lines[:-1])
        group_first = np.ones(n, dtype=bool)
        if n > 1:
            group_first[1:] = s_sets[1:] != s_sets[:-1]
        hits_sorted = same_prev.copy()
        hits_sorted[group_first] = self._resident[s_sets[group_first]] == s_lines[group_first]
        misses_sorted = ~hits_sorted

        # Residency runs: maximal stretches of one line in one set.  Run
        # boundaries are where a miss occurs in sorted order (a new line is
        # loaded) or a new set-group begins with a hit (continuation run).
        run_start = np.zeros(n, dtype=bool)
        run_start[group_first] = True
        run_start |= ~same_prev
        run_starts = np.flatnonzero(run_start)
        run_any_write = np.add.reduceat(s_writes.astype(np.int64), run_starts) > 0
        run_sets = s_sets[run_starts]
        run_lines = s_lines[run_starts]
        run_is_miss = misses_sorted[run_starts]
        run_group_first = group_first[run_starts]

        # Continuation runs inherit the carried dirty bit.
        carried_dirty = run_group_first & ~run_is_miss & self._dirty[run_sets]
        run_dirty = run_any_write | carried_dirty

        # Evictions: a run that begins with a miss evicts its predecessor —
        # the previous run in the same set, or the carried-in resident line
        # for the first run of a set-group.
        writebacks = 0
        if len(run_starts):
            prev_run_dirty = np.zeros(len(run_starts), dtype=bool)
            prev_run_dirty[1:] = run_dirty[:-1]
            # First run in group evicting the carried line:
            first_evicts = (
                run_group_first & run_is_miss
                & (self._resident[run_sets] != _EMPTY_LINE)
            )
            writebacks += int(np.sum(first_evicts & self._dirty[run_sets]))
            # Later runs evicting the previous run's line:
            later_evicts = ~run_group_first & run_is_miss
            writebacks += int(np.sum(later_evicts & prev_run_dirty))
        self.stats.writebacks += writebacks

        # Carry out: last run per set-group becomes the resident line.
        group_last = np.ones(n, dtype=bool)
        if n > 1:
            group_last[:-1] = s_sets[1:] != s_sets[:-1]
        last_idx = np.flatnonzero(group_last)
        last_sets = s_sets[last_idx]
        self._resident[last_sets] = s_lines[last_idx]
        # The dirty state of the carried-out line is its run's dirty bit.
        run_last = np.zeros(len(run_starts), dtype=bool)
        if len(run_starts):
            run_last[:-1] = run_sets[1:] != run_sets[:-1]
            run_last[-1] = True
        self._dirty[run_sets[run_last]] = run_dirty[run_last]

        # Statistics.
        misses = np.empty(n, dtype=bool)
        misses[order] = misses_sorted
        self._accumulate(addrs, wr, misses, lines)
        if t0 is not None:
            record_chunk(
                self.engine_label, n, int(np.sum(misses)),
                time.perf_counter() - t0,
            )
        return misses

    def _accumulate(self, addrs, wr, misses, lines) -> None:
        st = self.stats
        n = len(addrs)
        num_writes = int(np.sum(wr))
        num_misses = int(np.sum(misses))
        st.accesses += n
        st.writes += num_writes
        st.reads += n - num_writes
        st.misses += num_misses
        st.write_misses += int(np.sum(misses & wr))
        st.read_misses += int(np.sum(misses & ~wr))
        unique_lines = np.unique(lines)
        new = [ln for ln in unique_lines.tolist() if ln not in self._seen_lines]
        self._seen_lines.update(new)
        st.cold_misses += len(new)


class FastSetAssociative:
    """Per-set LRU engine for k-way caches."""

    engine_label = "fast_assoc"

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._ways = config.associativity
        # Per set: list of [line, dirty] in LRU->MRU order.
        self._sets: List[List[list]] = [[] for _ in range(config.num_sets)]
        self._seen_lines: set = set()

    def _set_indices(self, lines: np.ndarray) -> np.ndarray:
        """Map line addresses to set indices (modulo placement)."""
        return lines & self._set_mask

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.stats = CacheStats()
        self._sets = [[] for _ in range(self.config.num_sets)]
        self._seen_lines = set()

    def access(self, address: int, is_write: bool = False) -> bool:
        """Single-access convenience entry point."""
        return bool(self.access_chunk([address], [is_write])[0])

    def access_stream(self, chunks) -> CacheStats:
        """Drain an iterable of (addresses, writes) chunks; returns stats.

        The batch entry point the trace interpreter and JIT feed: block
        generators hand whole ``chunk_target``-sized blocks straight in.
        """
        for addrs, writes in chunks:
            self.access_chunk(addrs, writes)
        return self.stats

    def access_chunk(
        self,
        addresses: Sequence[int],
        writes: Optional[Sequence[bool]] = None,
    ) -> np.ndarray:
        """Simulate a chunk; returns the per-access miss mask."""
        addrs, wr = _as_chunk(addresses, writes)
        n = len(addrs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        t0 = time.perf_counter() if _obs_enabled() else None
        lines = addrs >> self._line_shift
        sets = self._set_indices(lines)

        order = np.argsort(sets, kind="stable")
        s_sets = sets[order]
        s_lines = lines[order]
        s_writes = wr[order]
        misses_sorted = np.empty(n, dtype=bool)

        # Run-length dedup: within one set's subsequence, consecutive
        # accesses to the same line after the first are guaranteed hits
        # (the line was just touched), so only run heads go through the
        # LRU state machine.  Stencil traces shrink ~4x this way.
        run_head = np.ones(n, dtype=bool)
        if n > 1:
            run_head[1:] = (s_sets[1:] != s_sets[:-1]) | (s_lines[1:] != s_lines[:-1])
        misses_sorted[:] = False  # non-heads are hits
        head_idx = np.flatnonzero(run_head)
        head_sets = s_sets[head_idx]
        head_lines = s_lines[head_idx]
        # A run is dirty when any member writes.
        run_write = np.add.reduceat(s_writes.astype(np.int64), head_idx) > 0
        head_misses = np.zeros(len(head_idx), dtype=bool)

        boundaries = np.flatnonzero(np.diff(head_sets)) + 1
        starts = np.concatenate(([0], boundaries)) if len(head_idx) else np.zeros(0, int)
        ends = (
            np.concatenate((boundaries, [len(head_idx)]))
            if len(head_idx)
            else np.zeros(0, int)
        )

        sets_state = self._sets
        ways = self._ways
        writebacks = 0
        for start, end in zip(starts.tolist(), ends.tolist()):
            set_index = int(head_sets[start])
            lru = sets_state[set_index]
            seq_lines = head_lines[start:end].tolist()
            seq_writes = run_write[start:end].tolist()
            out = head_misses[start:end]
            for pos, (line, w) in enumerate(zip(seq_lines, seq_writes)):
                hit = False
                for way_pos in range(len(lru) - 1, -1, -1):
                    entry = lru[way_pos]
                    if entry[0] == line:
                        del lru[way_pos]
                        if w:
                            entry[1] = True
                        lru.append(entry)
                        hit = True
                        break
                out[pos] = not hit
                if not hit:
                    if len(lru) >= ways:
                        victim = lru.pop(0)
                        if victim[1]:
                            writebacks += 1
                    lru.append([line, bool(w)])
        misses_sorted[head_idx] = head_misses
        self.stats.writebacks += writebacks

        misses = np.empty(n, dtype=bool)
        misses[order] = misses_sorted
        self._accumulate(addrs, wr, misses, lines)
        if t0 is not None:
            record_chunk(
                self.engine_label, n, int(np.sum(misses)),
                time.perf_counter() - t0,
            )
        return misses

    def _accumulate(self, addrs, wr, misses, lines) -> None:
        st = self.stats
        n = len(addrs)
        num_writes = int(np.sum(wr))
        num_misses = int(np.sum(misses))
        st.accesses += n
        st.writes += num_writes
        st.reads += n - num_writes
        st.misses += num_misses
        st.write_misses += int(np.sum(misses & wr))
        st.read_misses += int(np.sum(misses & ~wr))
        unique_lines = np.unique(lines)
        new = [ln for ln in unique_lines.tolist() if ln not in self._seen_lines]
        self._seen_lines.update(new)
        st.cold_misses += len(new)
