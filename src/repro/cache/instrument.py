"""Per-chunk metric recording shared by the cache engines.

Every simulator calls :func:`record_chunk` once per ``access_chunk``
with its engine label (``fast_direct`` / ``fast_assoc`` / ``reference``),
so the ``repro_sim_*`` families compare engines like-for-like — the
differential suite asserts the fast and reference engines report
identical access/miss totals for identical traces.  Throughput lands in
an accesses-per-second histogram; the callers time each chunk with the
monotonic clock only while collection is enabled.
"""

from __future__ import annotations

from repro.obs import runtime as obs

THROUGHPUT_BUCKETS = (
    1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9,
)
"""Histogram bounds for chunk throughput in accesses/second."""


def record_chunk(engine: str, accesses: int, misses: int, seconds: float) -> None:
    """Account one simulated chunk under the given engine label."""
    if not obs.is_enabled() or accesses == 0:
        return
    obs.counter_add(
        "repro_sim_accesses_total", accesses,
        "accesses simulated, by cache engine", engine=engine,
    )
    obs.counter_add(
        "repro_sim_misses_total", misses,
        "misses observed, by cache engine", engine=engine,
    )
    obs.counter_add(
        "repro_sim_hits_total", accesses - misses,
        "hits observed, by cache engine", engine=engine,
    )
    obs.counter_add(
        "repro_sim_chunks_total", 1,
        "chunks simulated, by cache engine", engine=engine,
    )
    if seconds > 0:
        obs.counter_add(
            "repro_sim_seconds_total", seconds,
            "wall-clock seconds spent simulating, by cache engine",
            engine=engine,
        )
        obs.observe(
            "repro_sim_chunk_accesses_per_second", accesses / seconds,
            "per-chunk simulation throughput", buckets=THROUGHPUT_BUCKETS,
            engine=engine,
        )
