"""Reference cache simulator.

A straightforward, obviously-correct set-associative LRU simulator used as
the ground truth for property-testing the fast engines and for small
examples.  Write policy is write-allocate/write-back.

For production trace volumes use :mod:`repro.cache.fastsim`, which is
behaviourally identical (verified by tests) but processes numpy chunks.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.instrument import record_chunk
from repro.cache.stats import CacheStats
from repro.obs.runtime import is_enabled as _obs_enabled


class _Line:
    """One resident cache line."""

    __slots__ = ("tag", "dirty")

    def __init__(self, tag: int, dirty: bool):
        self.tag = tag
        self.dirty = dirty


class ReferenceCache:
    """Set-associative LRU cache, one access at a time."""

    engine_label = "reference"

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._sets: List[List[_Line]] = [[] for _ in range(config.num_sets)]
        self._seen_lines: Set[int] = set()

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.stats = CacheStats()
        self._sets = [[] for _ in range(self.config.num_sets)]
        self._seen_lines = set()

    def access(self, address: int, is_write: bool = False) -> bool:
        """Perform one access; returns True on a miss.

        Policies: with ``write_back`` False (write-through), every write
        also goes to memory (counted in ``writebacks``) and lines are
        never dirty.  With ``write_allocate`` False, a write miss bypasses
        the cache entirely (no fill, no eviction).
        """
        line_addr = address // self.config.line_bytes
        set_index = line_addr % self.config.num_sets
        ways = self._sets[set_index]

        self.stats.accesses += 1
        if is_write:
            self.stats.writes += 1
            if not self.config.write_back:
                self.stats.writebacks += 1  # write-through traffic
        else:
            self.stats.reads += 1

        for pos, line in enumerate(ways):
            if line.tag == line_addr:
                # Hit: move to MRU position (end of list).
                ways.append(ways.pop(pos))
                if is_write and self.config.write_back:
                    line.dirty = True
                return False

        # Miss.
        self.stats.misses += 1
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        if line_addr not in self._seen_lines:
            self._seen_lines.add(line_addr)
            self.stats.cold_misses += 1
        if is_write and not self.config.write_allocate:
            return True  # bypass: no fill
        if len(ways) >= self.config.associativity:
            victim = ways.pop(0)
            if victim.dirty:
                self.stats.writebacks += 1
        ways.append(_Line(line_addr, is_write and self.config.write_back))
        return True

    def access_chunk(
        self,
        addresses: Sequence[int],
        writes: Optional[Sequence[bool]] = None,
    ) -> np.ndarray:
        """Access a chunk of addresses; returns the per-access miss mask."""
        addresses = np.asarray(addresses)
        if writes is None:
            writes = np.zeros(len(addresses), dtype=bool)
        else:
            writes = np.asarray(writes, dtype=bool)
        t0 = time.perf_counter() if _obs_enabled() else None
        misses = np.empty(len(addresses), dtype=bool)
        for i in range(len(addresses)):
            misses[i] = self.access(int(addresses[i]), bool(writes[i]))
        if t0 is not None:
            record_chunk(
                self.engine_label, len(addresses), int(np.sum(misses)),
                time.perf_counter() - t0,
            )
        return misses

    def access_stream(self, chunks) -> "CacheStats":
        """Drain an iterable of (addresses, writes) chunks; returns stats."""
        for addrs, writes in chunks:
            self.access_chunk(addrs, writes)
        return self.stats

    def resident_lines(self) -> Set[int]:
        """Line addresses currently cached (for tests)."""
        return {line.tag for ways in self._sets for line in ways}

    def lru_order(self, set_index: int) -> List[int]:
        """Tags of one set from LRU to MRU (for tests)."""
        return [line.tag for line in self._sets[set_index]]
