"""Benchmark registry.

:data:`ALL_SPECS` lists every program of the evaluation (Table 2's 13
kernels + 8 NAS + 9 SPEC95 + 5 SPEC92), each with its factory, default
problem size and a ``max_outer`` fidelity knob: O(N^3) linear-algebra
kernels are truncated to a prefix of their outermost loop during
simulation (their conflict behaviour is periodic across outer iterations,
so the miss-rate *shape* is preserved at a fraction of the trace cost —
see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench import kernels, nas, spec
from repro.errors import ConfigError
from repro.ir.program import Program


@dataclass(frozen=True)
class KernelSpec:
    """One registered benchmark program."""

    name: str
    factory: Callable[..., Program]
    suite: str
    description: str
    default_size: int
    category: str  # stencil | linalg | irregular | mixed | compute
    max_outer: Optional[int] = None  # truncate outermost loops when tracing
    paper_lines: int = 0

    def build(self, n: Optional[int] = None) -> Program:
        """Instantiate the program, optionally at a different size."""
        if n is None:
            return self.factory()
        return self.factory(n)


ALL_SPECS: Tuple[KernelSpec, ...] = (
    # -- kernels -----------------------------------------------------------
    KernelSpec("adi", kernels.adi, "kernel", "2D ADI Integration Fragment (Liv8)",
               128, "stencil", paper_lines=63),
    KernelSpec("chol", kernels.chol, "kernel", "Cholesky Factorization",
               256, "linalg", max_outer=6, paper_lines=165),
    KernelSpec("dgefa", kernels.dgefa, "kernel", "Gaussian Elimination w/Pivoting",
               256, "linalg", max_outer=6, paper_lines=75),
    KernelSpec("dot", kernels.dot, "kernel", "Vector Dot Product (Liv3)",
               2048, "stencil", paper_lines=32),
    KernelSpec("erle", kernels.erle, "kernel", "3D Tridiagonal Solver",
               64, "stencil", max_outer=24, paper_lines=612),
    KernelSpec("expl", kernels.expl, "kernel", "2D Explicit Hydrodynamics (Liv18)",
               512, "stencil", max_outer=96, paper_lines=64),
    KernelSpec("irr", kernels.irr, "kernel", "Relaxation over Irregular Mesh",
               250000, "irregular", paper_lines=196),
    KernelSpec("jacobi", kernels.jacobi, "kernel", "2D Jacobi Iteration",
               512, "stencil", max_outer=128, paper_lines=52),
    KernelSpec("linpackd", kernels.linpackd, "kernel", "LINPACK Gaussian Elimination",
               200, "linalg", max_outer=8, paper_lines=795),
    KernelSpec("mult", kernels.mult, "kernel", "Matrix Multiplication (Liv21)",
               300, "linalg", max_outer=8, paper_lines=29),
    KernelSpec("rb", kernels.rb, "kernel", "2D Red-Black Over-Relaxation",
               512, "stencil", max_outer=128, paper_lines=52),
    KernelSpec("shal", kernels.shal, "kernel", "Shallow Water Model",
               512, "stencil", max_outer=64, paper_lines=235),
    KernelSpec("simple", kernels.simple, "kernel", "2D Hydrodynamics",
               256, "stencil", max_outer=128, paper_lines=1346),
    # -- NAS ----------------------------------------------------------------
    KernelSpec("appbt", nas.appbt, "nas", "Block-Tridiagonal PDE Solver",
               32, "stencil", paper_lines=4441),
    KernelSpec("applu", nas.applu, "nas", "Parabolic/Elliptic PDE Solver",
               32, "stencil", paper_lines=3417),
    KernelSpec("appsp", nas.appsp, "nas", "Scalar-Pentadiagonal PDE Solver",
               32, "stencil", paper_lines=3991),
    KernelSpec("buk", nas.buk, "nas", "Integer Bucket Sort",
               65536, "irregular", paper_lines=305),
    KernelSpec("cgm", nas.cgm, "nas", "Sparse Conjugate Gradient",
               16384, "irregular", max_outer=4096, paper_lines=855),
    KernelSpec("embar", nas.embar, "nas", "Monte Carlo",
               65536, "compute", paper_lines=265),
    KernelSpec("fftpde", nas.fftpde, "nas", "3D Fast Fourier Transform",
               64, "mixed", paper_lines=773),
    KernelSpec("mgrid", nas.mgrid, "nas", "Multigrid Solver",
               64, "stencil", paper_lines=680),
    # -- SPEC95 ----------------------------------------------------------------
    KernelSpec("applu95", spec.applu95, "spec95", "Parabolic/Elliptic PDE Solver",
               33, "stencil", paper_lines=3868),
    KernelSpec("apsi", spec.apsi, "spec95", "Pseudospectral Air Pollution",
               56, "stencil", paper_lines=7361),
    KernelSpec("fpppp", spec.fpppp, "spec95", "2 Electron Integral Derivative",
               96, "irregular", paper_lines=2784),
    KernelSpec("hydro2d", spec.hydro2d, "spec95", "Navier-Stokes",
               402, "stencil", max_outer=128, paper_lines=4292),
    KernelSpec("mgrid95", spec.mgrid95, "spec95", "Multigrid Solver",
               64, "stencil", paper_lines=484),
    KernelSpec("su2cor", spec.su2cor, "spec95", "Vector Quantum Physics",
               32, "mixed", paper_lines=2332),
    KernelSpec("swim", spec.swim, "spec95", "Shallow Water Physics",
               512, "stencil", max_outer=64, paper_lines=429),
    KernelSpec("tomcatv", spec.tomcatv, "spec95", "Vectorized Mesh Generation",
               513, "stencil", max_outer=96, paper_lines=190),
    KernelSpec("turb3d", spec.turb3d, "spec95", "Isotropic Turbulence",
               64, "mixed", paper_lines=2100),
    KernelSpec("wave5", spec.wave5, "spec95", "Maxwell's Equations",
               65536, "mixed", paper_lines=7764),
    # -- SPEC92 --------------------------------------------------------------
    KernelSpec("doduc", spec.doduc, "spec92", "Thermohydraulical Modelization",
               64, "stencil", paper_lines=5334),
    KernelSpec("mdljdp2", spec.mdljdp2, "spec92", "Molecular Dynamics (double)",
               4096, "irregular", max_outer=2048, paper_lines=4316),
    KernelSpec("mdljsp2", spec.mdljsp2, "spec92", "Molecular Dynamics (single)",
               4096, "irregular", max_outer=2048, paper_lines=3885),
    KernelSpec("nasa7", spec.nasa7, "spec92", "NASA Ames Fortran Kernels",
               128, "linalg", max_outer=8, paper_lines=1204),
    KernelSpec("ora", spec.ora, "spec92", "Ray Tracing",
               16, "compute", paper_lines=453),
)

_BY_NAME: Dict[str, KernelSpec] = {s.name: s for s in ALL_SPECS}

SWEEP_KERNELS = ("expl", "shal", "dgefa", "chol")
"""The four kernels of the problem-size sweeps (Figures 16 and 17)."""


def get_spec(name: str) -> KernelSpec:
    """Look up one benchmark by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def specs_by_suite(suite: str) -> List[KernelSpec]:
    """All benchmarks of one suite (kernel / nas / spec95 / spec92)."""
    return [s for s in ALL_SPECS if s.suite == suite]


def kernel_names() -> List[str]:
    """All registered benchmark names, registry order."""
    return [s.name for s in ALL_SPECS]
