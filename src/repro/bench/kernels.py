"""The paper's 13 kernels (Table 2, KERNELS block), written in the DSL.

Each factory returns a fresh :class:`Program`; the ``n`` argument overrides
the problem size for sweeps (Figures 16/17 vary 250-520).  Loop bodies
follow the published kernels (Livermore loops, LINPACK, SWIM's shallow
water core, ...) closely enough to reproduce their reference patterns —
the input the padding analyses and the cache see.

Problem-size notes: element type is ``real*8`` throughout (the paper's
"element" units equal 8 bytes on its 16K/32B base cache).  DOT's default
length makes each vector exactly one cache size, reproducing the paper's
Figure-1 motivating example where every access conflicts.
"""

from __future__ import annotations

from repro.bench.sources import KERNEL_SOURCES
from repro.frontend import parse_program
from repro.ir.program import Program

SUITE = "kernel"


def adi(n: int = 128) -> Program:
    """2-D ADI integration fragment (Livermore 8 style): sweeps along both
    axes over six equally sized grids."""
    src = KERNEL_SOURCES["adi"]
    return parse_program(
        src,
        params={"N": n},
        suite=SUITE,
        description="2D ADI Integration Fragment (Liv8)",
    )


def chol(n: int = 256) -> Program:
    """Cholesky factorization, column (kji) form — the paper's archetypal
    linear-algebra code (Figure 3): ``A(i,j)`` updated by ``A(i,k)``."""
    src = KERNEL_SOURCES["chol"]
    return parse_program(
        src, params={"N": n}, suite=SUITE, description="Cholesky Factorization"
    )


def dgefa(n: int = 256) -> Program:
    """Gaussian elimination with partial pivoting (LINPACK dgefa core)."""
    src = KERNEL_SOURCES["dgefa"]
    return parse_program(
        src,
        params={"N": n},
        suite=SUITE,
        description="Gaussian Elimination w/Pivoting",
    )


def dot(n: int = 2048) -> Program:
    """Vector dot product (Livermore 3).  With ``n = 2048`` each real*8
    vector is exactly 16K — one base-cache size — so ``A(i)`` and ``B(i)``
    map to the same line every iteration, the paper's Figure-1 example."""
    src = KERNEL_SOURCES["dot"]
    return parse_program(
        src, params={"N": n}, suite=SUITE, description="Vector Dot Product (Liv3)"
    )


def erle(n: int = 64) -> Program:
    """3-D tridiagonal solver fragment: forward/backward sweeps along each
    axis of 3-D grids.  Plane size n*n*8 bytes hits cache-size multiples
    at n = 64 on a 16K cache, exercising higher-dimension intra padding."""
    src = KERNEL_SOURCES["erle"]
    return parse_program(
        src, params={"N": n}, suite=SUITE, description="3D Tridiagonal Solver"
    )


def expl(n: int = 512) -> Program:
    """2-D explicit hydrodynamics (Livermore 18): three sweeps over nine
    equally sized grids with nearest-neighbour stencils."""
    src = KERNEL_SOURCES["expl"]
    return parse_program(
        src,
        params={"N": n},
        suite=SUITE,
        description="2D Explicit Hydrodynamics (Liv18)",
    )


def irr(m: int = 250000) -> Program:
    """Relaxation over an irregular mesh: gather through an index array.
    References are not uniformly generated, so padding finds nothing to do
    — matching the paper's IRR row (0 arrays padded)."""
    src = KERNEL_SOURCES["irr"]
    return parse_program(
        src,
        params={"M": m},
        suite=SUITE,
        description="Relaxation over Irregular Mesh",
    )


def jacobi(n: int = 512) -> Program:
    """2-D Jacobi iteration (the paper's running example, Figure 7)."""
    src = KERNEL_SOURCES["jacobi"]
    return parse_program(
        src,
        params={"N": n},
        suite=SUITE,
        description="2D Jacobi Iteration w/Convergence",
    )


def linpackd(n: int = 200) -> Program:
    """LINPACK driver core: factor (dgefa) plus solve (dgesl) with daxpy
    over a leading-dimension-n+1 matrix and work vectors."""
    src = KERNEL_SOURCES["linpackd"]
    return parse_program(
        src,
        params={"N": n},
        suite=SUITE,
        description="Gaussian Elimination w/Pivoting (LINPACK)",
    )


def mult(n: int = 300) -> Program:
    """Matrix multiplication (Livermore 21), jki order."""
    src = KERNEL_SOURCES["mult"]
    return parse_program(
        src,
        params={"N": n},
        suite=SUITE,
        description="Matrix Multiplication (Liv21)",
    )


def rb(n: int = 512) -> Program:
    """2-D red-black over-relaxation: two stride-2 sweeps over one grid."""
    src = KERNEL_SOURCES["rb"]
    return parse_program(
        src,
        params={"N": n},
        suite=SUITE,
        description="2D Red-Black Over-Relaxation",
    )


def shal(n: int = 512) -> Program:
    """Shallow water model core (the SWIM/SHALLOW kernel): fourteen equally
    sized grids updated by three stencil sweeps per timestep."""
    src = KERNEL_SOURCES["shal"]
    return parse_program(
        src, params={"N": n}, suite=SUITE, description="Shallow Water Model"
    )


def simple(n: int = 256) -> Program:
    """2-D Lagrangian hydrodynamics (SIMPLE): velocity, position, energy
    and pressure grids updated by coupled stencil sweeps."""
    src = KERNEL_SOURCES["simple"]
    return parse_program(
        src, params={"N": n}, suite=SUITE, description="2D Hydrodynamics"
    )
