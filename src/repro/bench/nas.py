"""NAS benchmark proxies (Table 2, NAS BENCHMARKS block).

The paper compiled the full NAS codes with SUIF; here each program is a
*kernel proxy*: a loop nest reproducing the application's dominant array
reference pattern at a scaled problem size (documented per function).
The properties that drive padding survive the reduction: array counts and
(relative) shapes, uniformly-generated-reference fraction, indirection,
and the safety flags that made some codes unpaddable for SUIF (FFTPDE and
CGM pass their arrays as procedure parameters, so the compiler found 0
safely paddable arrays — reproduced with ``parameter_array`` directives).
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.ir.program import Program

SUITE = "nas"


def appbt(n: int = 32) -> Program:
    """Block-tridiagonal PDE solver proxy: five coupled 3-D solution grids
    plus residuals, swept along each axis (ADI style)."""
    src = """
program appbt
  param N = 32
  real*8 U1(N,N,N), U2(N,N,N), U3(N,N,N), U4(N,N,N), U5(N,N,N)
  real*8 R1(N,N,N), R2(N,N,N), R3(N,N,N), R4(N,N,N), R5(N,N,N)
  do k = 2, N-1
    do j = 2, N-1
      do i = 2, N-1
        R1(i,j,k) = U1(i-1,j,k) + U1(i+1,j,k) - 2.0 * U1(i,j,k) + U2(i,j,k)
        R2(i,j,k) = U2(i,j-1,k) + U2(i,j+1,k) - 2.0 * U2(i,j,k) + U3(i,j,k)
        R3(i,j,k) = U3(i,j,k-1) + U3(i,j,k+1) - 2.0 * U3(i,j,k) + U4(i,j,k)
        R4(i,j,k) = U4(i-1,j,k) + U4(i,j-1,k) - 2.0 * U4(i,j,k) + U5(i,j,k)
        R5(i,j,k) = U5(i,j,k-1) + U5(i+1,j,k) - 2.0 * U5(i,j,k) + U1(i,j,k)
      end do
    end do
  end do
  do k = 2, N-1
    do j = 2, N-1
      do i = 2, N-1
        U1(i,j,k) = U1(i,j,k) + R1(i,j,k)
        U2(i,j,k) = U2(i,j,k) + R2(i,j,k)
        U3(i,j,k) = U3(i,j,k) + R3(i,j,k)
        U4(i,j,k) = U4(i,j,k) + R4(i,j,k)
        U5(i,j,k) = U5(i,j,k) + R5(i,j,k)
      end do
    end do
  end do
end
"""
    return parse_program(
        src, params={"N": n}, suite=SUITE, description="Block-Tridiagonal PDE Solver"
    )


def applu(n: int = 32) -> Program:
    """Parabolic/elliptic PDE solver proxy: SSOR-like lower/upper sweeps
    over coupled 3-D grids."""
    src = """
program applu
  param N = 32
  real*8 U1(N,N,N), U2(N,N,N), U3(N,N,N), U4(N,N,N)
  real*8 RSD1(N,N,N), RSD2(N,N,N)
  do k = 2, N-1
    do j = 2, N-1
      do i = 2, N-1
        RSD1(i,j,k) = RSD1(i,j,k) - 0.5 * (U1(i-1,j,k) + U2(i,j-1,k) + U3(i,j,k-1))
      end do
    end do
  end do
  do k = 2, N-1
    do j = 2, N-1
      do i = 2, N-1
        RSD2(i,j,k) = RSD2(i,j,k) - 0.5 * (U1(i+1,j,k) + U2(i,j+1,k) + U3(i,j,k+1))
        U4(i,j,k) = U4(i,j,k) + RSD1(i,j,k) + RSD2(i,j,k)
      end do
    end do
  end do
end
"""
    return parse_program(
        src, params={"N": n}, suite=SUITE, description="Parabolic/Elliptic PDE Solver"
    )


def appsp(n: int = 32) -> Program:
    """Scalar-pentadiagonal PDE solver proxy: axis sweeps with 2-wide
    stencils over coupled grids."""
    src = """
program appsp
  param N = 32
  real*8 U1(N,N,N), U2(N,N,N), U3(N,N,N), RHS(N,N,N), LHS(N,N,N)
  do k = 3, N-2
    do j = 3, N-2
      do i = 3, N-2
        RHS(i,j,k) = U1(i-2,j,k) - 4.0 * U1(i-1,j,k) + 6.0 * U1(i,j,k) - 4.0 * U1(i+1,j,k) + U1(i+2,j,k)
      end do
    end do
  end do
  do k = 3, N-2
    do j = 3, N-2
      do i = 3, N-2
        LHS(i,j,k) = U2(i,j-2,k) - 4.0 * U2(i,j-1,k) + 6.0 * U2(i,j,k) - 4.0 * U2(i,j+1,k) + U2(i,j+2,k)
        U3(i,j,k) = U3(i,j,k) + RHS(i,j,k) + LHS(i,j,k)
      end do
    end do
  end do
end
"""
    return parse_program(
        src,
        params={"N": n},
        suite=SUITE,
        description="Scalar-Pentadiagonal PDE Solver",
    )


def buk(n: int = 65536, buckets: int = 1024) -> Program:
    """Integer bucket sort proxy: histogram through key indirection.
    References to COUNT are data-dependent gathers — not uniformly
    generated, so padding has little to work with."""
    src = """
program buk
  param N = 65536
  param NB = 1024
  integer*4 KEY(N), RANK(N), COUNT(NB)
  do i = 1, NB
    COUNT(i) = COUNT(i) - COUNT(i)
  end do
  do i = 1, N
    COUNT(KEY(i)) = COUNT(KEY(i)) + 1
  end do
  do i = 1, N
    RANK(i) = COUNT(KEY(i))
  end do
end
"""
    return parse_program(
        src,
        params={"N": n, "NB": buckets},
        suite=SUITE,
        description="Integer Bucket Sort",
    )


def cgm(n: int = 16384, row_nnz: int = 8) -> Program:
    """Sparse conjugate-gradient proxy: CSR-style matrix-vector product
    with column indirection.  Arrays are procedure parameters in the real
    code, so none are safely paddable (ARRAYS SAFE = 0 in Table 2)."""
    src = """
program cgm
  param N = 16384
  param NNZ = 8
  real*8 AVAL(N,NNZ), X(N), Y(N), P(N), Q(N)
  integer*4 COLIDX(N)
  parameter_array AVAL, X, Y, P, Q, COLIDX
  do i = 1, N
    do k = 1, NNZ
      Y(i) = Y(i) + AVAL(i,k) * X(COLIDX(i))
    end do
  end do
  do i = 1, N
    P(i) = Y(i) + 0.5 * P(i)
    Q(i) = Q(i) + P(i)
  end do
end
"""
    return parse_program(
        src,
        params={"N": n, "NNZ": row_nnz},
        suite=SUITE,
        description="Sparse Conjugate Gradient",
    )


def embar(n: int = 65536) -> Program:
    """Monte Carlo proxy (EP): long scans of two deviate vectors feeding a
    tiny histogram — mostly compute with streaming data, so padding has
    essentially no effect (matches the paper's EMBAR row).  The vectors
    are deliberately unequal in size: EP's working set is not
    cache-aligned, unlike the grid codes."""
    src = """
program embar
  param N = 65536
  param M = 65552
  real*8 XD(M), YD(M), QHIST(10)
  real*8 SX, SY
  do i = 1, N
    SX = SX + XD(i)
    SY = SY + YD(i)
  end do
  do i = 1, N
    QHIST(1) = QHIST(1) + XD(i) * YD(i)
  end do
end
"""
    return parse_program(src, params={"N": n}, suite=SUITE, description="Monte Carlo")


def fftpde(n: int = 64) -> Program:
    """3-D FFT PDE proxy: power-of-two butterfly strides (here the first
    two stages along the leading axis) over complex data stored as two
    real grids.  Arrays are procedure parameters in the real code — the
    compiler cannot pad them, and the power-of-two strides are exactly the
    worst case, which is why the paper reports PAD failing on FFTPDE."""
    src = """
program fftpde
  param N = 64
  param H = 32
  param Q = 16
  real*8 XR(N,N,N), XI(N,N,N)
  parameter_array XR, XI
  do k = 1, N
    do j = 1, N
      do i = 1, H
        XR(i,j,k) = XR(i,j,k) + XR(i+H,j,k)
        XI(i,j,k) = XI(i,j,k) + XI(i+H,j,k)
      end do
    end do
  end do
  do k = 1, N
    do j = 1, N
      do i = 1, Q
        XR(i,j,k) = XR(i,j,k) + XR(i+Q,j,k)
        XI(i,j,k) = XI(i,j,k) + XI(i+Q,j,k)
      end do
    end do
  end do
end
"""
    return parse_program(
        src,
        params={"N": n, "H": n // 2, "Q": n // 4},
        suite=SUITE,
        description="3D Fast Fourier Transform",
    )


def mgrid(n: int = 64) -> Program:
    """Multigrid solver proxy: fine-grid relaxation plus a stride-2
    coarse-grid restriction.  The strided references have non-unit
    coefficients, so a large share of references is *not* uniformly
    generated (the paper reports ~81% for MGRID)."""
    src = """
program mgrid
  param N = 64
  param NC = 32
  real*8 U(N,N,N), R(N,N,N), RC(NC,NC,NC)
  do k = 2, N-1
    do j = 2, N-1
      do i = 2, N-1
        R(i,j,k) = U(i-1,j,k) + U(i+1,j,k) + U(i,j-1,k) + U(i,j+1,k) + U(i,j,k-1) + U(i,j,k+1) - 6.0 * U(i,j,k)
      end do
    end do
  end do
  do k = 2, NC-1
    do j = 2, NC-1
      do i = 2, NC-1
        RC(i,j,k) = 0.5 * R(2*i,2*j,2*k) + 0.125 * (R(2*i-1,2*j,2*k) + R(2*i+1,2*j,2*k))
      end do
    end do
  end do
end
"""
    return parse_program(
        src, params={"N": n, "NC": n // 2}, suite=SUITE, description="Multigrid Solver"
    )
