"""DSL sources of the 13 faithful kernels.

Exposed separately from the factories so the numeric evaluator
(:mod:`repro.frontend.evaluate`) and external tools can consume the same
sources the trace-level benchmarks are built from.  ``_mdlj``-style
generated proxies live in their own modules; only the paper's kernel
block is collected here.
"""

from __future__ import annotations

from typing import Dict

KERNEL_SOURCES: Dict[str, str] = {}

ADI_SRC = """program adi
  param N = 128
  real*8 U(N,N), X(N,N), Y(N,N), A(N,N), B(N,N), C(N,N)
  do i = 2, N
    do j = 1, N
      X(j,i) = X(j,i) - A(j,i) * X(j,i-1) * B(j,i)
    end do
  end do
  do i = 1, N
    do j = 2, N
      Y(j,i) = Y(j,i) - C(j,i) * Y(j-1,i) * U(j,i)
    end do
  end do
  do i = 2, N
    do j = 2, N
      U(j,i) = U(j,i) + X(j,i-1) + Y(j-1,i)
    end do
  end do
end
"""
KERNEL_SOURCES["adi"] = ADI_SRC

CHOL_SRC = """program chol
  param N = 256
  real*8 A(N,N), D(N)
  do k = 1, N
    D(k) = D(k) + A(k,k)
    do i = k, N
      A(i,k) = A(i,k) * D(k)
    end do
    do j = k+1, N
      do i = j, N
        A(i,j) = A(i,j) - A(i,k) * A(j,k)
      end do
    end do
  end do
end
"""
KERNEL_SOURCES["chol"] = CHOL_SRC

DGEFA_SRC = """program dgefa
  param N = 256
  real*8 A(N,N)
  integer*4 IPVT(N)
  do k = 1, N-1
    touch IPVT(k)
    do i = k+1, N
      A(i,k) = A(i,k) / A(k,k)
    end do
    do j = k+1, N
      do i = k+1, N
        A(i,j) = A(i,j) - A(i,k) * A(k,j)
      end do
    end do
  end do
end
"""
KERNEL_SOURCES["dgefa"] = DGEFA_SRC

DOT_SRC = """program dot
  param N = 2048
  real*8 A(N), B(N)
  real*8 S
  do i = 1, N
    S = S + A(i) * B(i)
  end do
end
"""
KERNEL_SOURCES["dot"] = DOT_SRC

ERLE_SRC = """program erle
  param N = 64
  real*8 U(N,N,N), RHS(N,N,N), AX(N,N,N), BX(N,N,N), CX(N,N,N), F(N,N,N)
  do k = 1, N
    do j = 1, N
      do i = 2, N
        U(i,j,k) = RHS(i,j,k) - AX(i,j,k) * U(i-1,j,k)
      end do
    end do
  end do
  do k = 1, N
    do j = 2, N
      do i = 1, N
        U(i,j,k) = U(i,j,k) - BX(i,j,k) * U(i,j-1,k)
      end do
    end do
  end do
  do k = 2, N
    do j = 1, N
      do i = 1, N
        U(i,j,k) = F(i,j,k) - CX(i,j,k) * U(i,j,k-1)
      end do
    end do
  end do
end
"""
KERNEL_SOURCES["erle"] = ERLE_SRC

EXPL_SRC = """program expl
  param N = 512
  real*8 ZA(N,N), ZB(N,N), ZM(N,N), ZP(N,N), ZQ(N,N), ZR(N,N)
  real*8 ZU(N,N), ZV(N,N), ZZ(N,N)
  do k = 2, N-1
    do j = 2, N-1
      ZA(j,k) = (ZP(j-1,k+1) + ZQ(j-1,k+1) - ZP(j-1,k) - ZQ(j-1,k)) * (ZR(j,k) + ZR(j-1,k)) / (ZM(j-1,k) + ZM(j-1,k+1))
      ZB(j,k) = (ZP(j-1,k) + ZQ(j-1,k) - ZP(j,k) - ZQ(j,k)) * (ZR(j,k) + ZR(j,k-1)) / (ZM(j,k) + ZM(j-1,k))
    end do
  end do
  do k = 2, N-1
    do j = 2, N-1
      ZU(j,k) = ZU(j,k) + (ZZ(j,k) * (ZA(j,k) * (ZZ(j,k) - ZZ(j+1,k)) - ZA(j-1,k) * (ZZ(j,k) - ZZ(j-1,k))) - ZB(j,k) * (ZZ(j,k) - ZZ(j,k-1)))
      ZV(j,k) = ZV(j,k) + (ZR(j,k) * (ZA(j,k) * (ZR(j,k) - ZR(j+1,k)) - ZA(j-1,k) * (ZR(j,k) - ZR(j-1,k))) - ZB(j,k) * (ZR(j,k) - ZR(j,k-1)))
    end do
  end do
  do k = 2, N-1
    do j = 2, N-1
      ZR(j,k) = ZR(j,k) + ZU(j,k)
      ZZ(j,k) = ZZ(j,k) + ZV(j,k)
    end do
  end do
end
"""
KERNEL_SOURCES["expl"] = EXPL_SRC

IRR_SRC = """program irr
  param M = 250000
  real*8 X(M), Y(M), COEF(M)
  integer*4 IDX(M)
  do i = 1, M
    Y(i) = Y(i) + COEF(i) * X(IDX(i))
  end do
  do i = 1, M
    X(i) = X(i) + Y(i)
  end do
end
"""
KERNEL_SOURCES["irr"] = IRR_SRC

JACOBI_SRC = """program jacobi
  param N = 512
  real*8 A(N,N), B(N,N)
  do i = 2, N-1
    do j = 2, N-1
      B(j,i) = 0.25 * (A(j-1,i) + A(j,i-1) + A(j+1,i) + A(j,i+1))
    end do
  end do
  do i = 2, N-1
    do j = 2, N-1
      A(j,i) = B(j,i)
    end do
  end do
end
"""
KERNEL_SOURCES["jacobi"] = JACOBI_SRC

LINPACKD_SRC = """program linpackd
  param N = 200
  real*8 A(N,N), B(N), X(N)
  integer*4 IPVT(N)
  do k = 1, N-1
    touch IPVT(k)
    do i = k+1, N
      A(i,k) = A(i,k) / A(k,k)
    end do
    do j = k+1, N
      do i = k+1, N
        A(i,j) = A(i,j) - A(i,k) * A(k,j)
      end do
    end do
  end do
  do k = 1, N-1
    do i = k+1, N
      B(i) = B(i) - A(i,k) * B(k)
    end do
  end do
  do k = 1, N
    do i = 1, N
      X(i) = X(i) + A(i,k) * B(k)
    end do
  end do
end
"""
KERNEL_SOURCES["linpackd"] = LINPACKD_SRC

MULT_SRC = """program mult
  param N = 300
  real*8 A(N,N), B(N,N), C(N,N)
  do j = 1, N
    do k = 1, N
      do i = 1, N
        C(i,j) = C(i,j) + A(i,k) * B(k,j)
      end do
    end do
  end do
end
"""
KERNEL_SOURCES["mult"] = MULT_SRC

RB_SRC = """program rb
  param N = 512
  real*8 A(N,N)
  do i = 2, N-1
    do j = 2, N-1, 2
      A(j,i) = 0.25 * (A(j-1,i) + A(j,i-1) + A(j+1,i) + A(j,i+1))
    end do
  end do
  do i = 2, N-1
    do j = 3, N-1, 2
      A(j,i) = 0.25 * (A(j-1,i) + A(j,i-1) + A(j+1,i) + A(j,i+1))
    end do
  end do
end
"""
KERNEL_SOURCES["rb"] = RB_SRC

SHAL_SRC = """program shal
  param N = 512
  real*8 U(N,N), V(N,N), P(N,N)
  real*8 UNEW(N,N), VNEW(N,N), PNEW(N,N)
  real*8 UOLD(N,N), VOLD(N,N), POLD(N,N)
  real*8 CU(N,N), CV(N,N), Z(N,N), H(N,N), PSI(N,N)
  do j = 1, N-1
    do i = 1, N-1
      CU(i+1,j) = 0.5 * (P(i+1,j) + P(i,j)) * U(i+1,j)
      CV(i,j+1) = 0.5 * (P(i,j+1) + P(i,j)) * V(i,j+1)
      Z(i+1,j+1) = (4.0 * (V(i+1,j+1) - V(i,j+1)) - U(i+1,j+1) + U(i+1,j)) / (P(i,j) + P(i+1,j) + P(i+1,j+1) + P(i,j+1))
      H(i,j) = P(i,j) + 0.25 * (U(i+1,j) * U(i+1,j) + U(i,j) * U(i,j) + V(i,j+1) * V(i,j+1) + V(i,j) * V(i,j))
    end do
  end do
  do j = 1, N-1
    do i = 1, N-1
      UNEW(i+1,j) = UOLD(i+1,j) + 0.2 * (Z(i+1,j+1) + Z(i+1,j)) * (CV(i+1,j+1) + CV(i,j+1) + CV(i,j) + CV(i+1,j)) - 0.3 * (H(i+1,j) - H(i,j))
      VNEW(i,j+1) = VOLD(i,j+1) - 0.2 * (Z(i+1,j+1) + Z(i,j+1)) * (CU(i+1,j+1) + CU(i,j+1) + CU(i,j) + CU(i+1,j)) - 0.3 * (H(i,j+1) - H(i,j))
      PNEW(i,j) = POLD(i,j) - 0.4 * (CU(i+1,j) - CU(i,j)) - 0.4 * (CV(i,j+1) - CV(i,j))
    end do
  end do
  do j = 1, N
    do i = 1, N
      UOLD(i,j) = U(i,j) + 0.1 * (UNEW(i,j) - 2.0 * U(i,j) + UOLD(i,j))
      VOLD(i,j) = V(i,j) + 0.1 * (VNEW(i,j) - 2.0 * V(i,j) + VOLD(i,j))
      POLD(i,j) = P(i,j) + 0.1 * (PNEW(i,j) - 2.0 * P(i,j) + POLD(i,j))
      U(i,j) = UNEW(i,j)
      V(i,j) = VNEW(i,j)
      P(i,j) = PNEW(i,j)
    end do
  end do
  touch PSI(1,1)
end
"""
KERNEL_SOURCES["shal"] = SHAL_SRC

SIMPLE_SRC = """program simple
  param N = 256
  real*8 RHO(N,N), PR(N,N), Q(N,N), E(N,N)
  real*8 XV(N,N), YV(N,N), XP(N,N), YP(N,N)
  real*8 AJ(N,N), S(N,N), D(N,N), W(N,N)
  do k = 2, N-1
    do l = 2, N-1
      XV(l,k) = XV(l,k) + 0.5 * (PR(l,k) + Q(l,k) - PR(l-1,k) - Q(l-1,k)) * AJ(l,k)
      YV(l,k) = YV(l,k) + 0.5 * (PR(l,k) + Q(l,k) - PR(l,k-1) - Q(l,k-1)) * AJ(l,k)
    end do
  end do
  do k = 2, N-1
    do l = 2, N-1
      XP(l,k) = XP(l,k) + XV(l,k)
      YP(l,k) = YP(l,k) + YV(l,k)
      AJ(l,k) = (XP(l+1,k) - XP(l-1,k)) * (YP(l,k+1) - YP(l,k-1)) - (XP(l,k+1) - XP(l,k-1)) * (YP(l+1,k) - YP(l-1,k))
    end do
  end do
  do k = 2, N-1
    do l = 2, N-1
      S(l,k) = RHO(l,k) * AJ(l,k)
      D(l,k) = S(l,k) / (S(l,k) + W(l,k))
      Q(l,k) = D(l,k) * (XV(l+1,k) - XV(l,k)) * (YV(l,k+1) - YV(l,k))
      E(l,k) = E(l,k) - (PR(l,k) + Q(l,k)) * (AJ(l,k) - W(l,k))
      PR(l,k) = RHO(l,k) * E(l,k)
    end do
  end do
end
"""
KERNEL_SOURCES["simple"] = SIMPLE_SRC

def kernel_source(name: str) -> str:
    """The DSL source of one faithful kernel."""
    try:
        return KERNEL_SOURCES[name]
    except KeyError:
        raise KeyError(
            f"no DSL source recorded for {name!r}; known: {sorted(KERNEL_SOURCES)}"
        ) from None
