"""Benchmark programs: the paper's 13 kernels plus NAS/SPEC proxies."""

from repro.bench.sources import KERNEL_SOURCES, kernel_source
from repro.bench.suites import (
    ALL_SPECS,
    SWEEP_KERNELS,
    KernelSpec,
    get_spec,
    kernel_names,
    specs_by_suite,
)

__all__ = [
    "ALL_SPECS",
    "KERNEL_SOURCES",
    "KernelSpec",
    "SWEEP_KERNELS",
    "get_spec",
    "kernel_names",
    "kernel_source",
    "specs_by_suite",
]
