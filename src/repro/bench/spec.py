"""SPEC95 and SPEC92 floating-point benchmark proxies (Table 2).

As with the NAS programs, each is a kernel proxy reproducing the
application's dominant reference patterns at a scaled size; see
:mod:`repro.bench.nas` for the substitution rationale.  Programs whose
hot arrays live behind procedure boundaries or EQUIVALENCE in the original
sources carry the corresponding safety directives, reproducing the
compiler-found ``ARRAYS SAFE`` limitations of Table 2.
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.ir.program import Program

SPEC95 = "spec95"
SPEC92 = "spec92"


def tomcatv(n: int = 513) -> Program:
    """Vectorized mesh generation: seven N x N grids, nearest-neighbour
    stencils plus a tridiagonal relaxation.  The paper's biggest winner —
    its default N=513 columns (8-byte reals) interact badly with
    power-of-two caches."""
    src = """
program tomcatv
  param N = 513
  real*8 X(N,N), Y(N,N), RX(N,N), RY(N,N), AA(N,N), DD(N,N), D(N,N)
  do j = 2, N-1
    do i = 2, N-1
      RX(i,j) = X(i-1,j) + X(i+1,j) + X(i,j-1) + X(i,j+1) - 4.0 * X(i,j)
      RY(i,j) = Y(i-1,j) + Y(i+1,j) + Y(i,j-1) + Y(i,j+1) - 4.0 * Y(i,j)
      AA(i,j) = 0.25 * (X(i+1,j+1) - X(i-1,j-1)) * (Y(i+1,j+1) - Y(i-1,j-1))
      DD(i,j) = AA(i,j) * AA(i,j) + 0.5
    end do
  end do
  do j = 2, N-1
    do i = 2, N-1
      D(i,j) = 1.0 / (DD(i,j) - AA(i,j-1) * D(i,j-1))
      RX(i,j) = (RX(i,j) + AA(i,j-1) * RX(i,j-1)) * D(i,j)
      RY(i,j) = (RY(i,j) + AA(i,j-1) * RY(i,j-1)) * D(i,j)
    end do
  end do
  do j = 2, N-1
    do i = 2, N-1
      X(i,j) = X(i,j) + RX(i,j)
      Y(i,j) = Y(i,j) + RY(i,j)
    end do
  end do
end
"""
    return parse_program(src, params={"N": n}, suite=SPEC95, description="Mesh Generation")


def swim(n: int = 512) -> Program:
    """Shallow water physics — the SPEC95 packaging of the SHALLOW kernel
    (same fourteen-grid structure as :func:`repro.bench.kernels.shal`)."""
    from repro.bench.kernels import shal

    prog = shal(n)
    return Program(
        "swim",
        prog.decls,
        prog.body,
        source_lines=429,
        suite=SPEC95,
        description="Shallow Water Physics",
    )


def su2cor(n: int = 32) -> Program:
    """Quantum physics (lattice gauge) proxy: sweeps over lattice link
    arrays with periodic-style neighbour offsets and a gather."""
    src = """
program su2cor
  param N = 32
  real*8 U1(N,N,N), U2(N,N,N), U3(N,N,N), W(N,N,N)
  integer*4 NBR(N)
  do k = 2, N-1
    do j = 2, N-1
      do i = 2, N-1
        W(i,j,k) = U1(i,j,k) * U2(i+1,j,k) + U2(i,j,k) * U1(i,j+1,k) - U3(i,j,k-1)
      end do
    end do
  end do
  do k = 1, N
    do j = 1, N
      do i = 1, N
        U3(i,j,k) = U3(i,j,k) + W(NBR(i),j,k)
      end do
    end do
  end do
end
"""
    return parse_program(src, params={"N": n}, suite=SPEC95, description="Quantum Physics")


def hydro2d(n: int = 402) -> Program:
    """Astrophysical Navier-Stokes proxy: nine hydro grids with directional
    sweeps (the galactic-jet computation is ADI-like)."""
    src = """
program hydro2d
  param N = 402
  real*8 RO(N,N), EN(N,N), VX(N,N), VY(N,N)
  real*8 FRO(N,N), FEN(N,N), FVX(N,N), FVY(N,N), PG(N,N)
  do j = 2, N-1
    do i = 2, N-1
      FRO(i,j) = RO(i,j) * VX(i,j)
      FVX(i,j) = RO(i,j) * VX(i,j) * VX(i,j) + PG(i,j)
      FVY(i,j) = RO(i,j) * VX(i,j) * VY(i,j)
      FEN(i,j) = VX(i,j) * (EN(i,j) + PG(i,j))
    end do
  end do
  do j = 2, N-1
    do i = 2, N-1
      RO(i,j) = RO(i,j) - 0.5 * (FRO(i+1,j) - FRO(i-1,j))
      VX(i,j) = VX(i,j) - 0.5 * (FVX(i+1,j) - FVX(i-1,j))
      VY(i,j) = VY(i,j) - 0.5 * (FVY(i,j+1) - FVY(i,j-1))
      EN(i,j) = EN(i,j) - 0.5 * (FEN(i,j+1) - FEN(i,j-1))
    end do
  end do
end
"""
    return parse_program(src, params={"N": n}, suite=SPEC95, description="Navier-Stokes")


def mgrid95(n: int = 64) -> Program:
    """SPEC95's multigrid solver: same structure as the NAS version."""
    from repro.bench.nas import mgrid

    prog = mgrid(n)
    return Program(
        "mgrid95",
        prog.decls,
        prog.body,
        source_lines=484,
        suite=SPEC95,
        description="Multigrid Solver",
    )


def applu95(n: int = 33) -> Program:
    """SPEC95's parabolic/elliptic PDE solver (APPLU): NAS structure at the
    SPEC grid size."""
    from repro.bench.nas import applu

    prog = applu(n)
    return Program(
        "applu95",
        prog.decls,
        prog.body,
        source_lines=3868,
        suite=SPEC95,
        description="Parabolic/Elliptic PDE Solver",
    )


def apsi(n: int = 56) -> Program:
    """Pseudospectral air pollution proxy: meteorology grids with vertical
    sweeps; many distinct small 3-D arrays."""
    src = """
program apsi
  param N = 56
  param L = 8
  real*8 T(N,L,N), QV(N,L,N), QC(N,L,N), WK1(N,L,N), WK2(N,L,N)
  real*8 UX(N,L,N), WZ(N,L,N), DKH(N,L,N)
  do k = 2, N-1
    do l = 2, L-1
      do i = 2, N-1
        WK1(i,l,k) = T(i,l,k) + DKH(i,l,k) * (T(i+1,l,k) - 2.0 * T(i,l,k) + T(i-1,l,k))
        WK2(i,l,k) = QV(i,l,k) + UX(i,l,k) * (QV(i,l+1,k) - QV(i,l-1,k))
      end do
    end do
  end do
  do k = 2, N-1
    do l = 2, L-1
      do i = 2, N-1
        T(i,l,k) = WK1(i,l,k) + WZ(i,l,k) * (WK1(i,l,k+1) - WK1(i,l,k-1))
        QC(i,l,k) = QC(i,l,k) + WK2(i,l,k)
      end do
    end do
  end do
end
"""
    return parse_program(
        src, params={"N": n}, suite=SPEC95, description="Pseudospectral Air Pollution"
    )


def fpppp(n: int = 96) -> Program:
    """Two-electron integral derivative proxy: dominated by register-level
    computation over short vectors; very low uniformly-generated fraction
    (the table reports 16%) modelled with gathers into scratch vectors."""
    src = """
program fpppp
  param N = 96
  real*8 FV(N), G(N)
  integer*4 MAP(N)
  do i = 1, N
    FV(i) = FV(i) + G(MAP(i))
  end do
  do i = 1, N
    G(i) = G(i) + FV(MAP(i)) * G(MAP(i))
  end do
end
"""
    return parse_program(
        src,
        params={"N": n},
        suite=SPEC95,
        description="2 Electron Integral Derivative",
    )


def turb3d(n: int = 64) -> Program:
    """Isotropic turbulence proxy: pseudo-spectral FFT-like strided passes
    plus a nonlinear-term stencil over velocity grids."""
    src = """
program turb3d
  param N = 64
  param H = 32
  real*8 VU(N,N,N), VV(N,N,N), VW(N,N,N), WK(N,N,N)
  do k = 1, N
    do j = 1, N
      do i = 1, H
        WK(i,j,k) = VU(i,j,k) + VU(i+H,j,k)
      end do
    end do
  end do
  do k = 2, N-1
    do j = 2, N-1
      do i = 2, N-1
        VW(i,j,k) = VU(i,j,k) * (VV(i,j+1,k) - VV(i,j-1,k)) + WK(i,j,k)
      end do
    end do
  end do
end
"""
    return parse_program(
        src,
        params={"N": n, "H": n // 2},
        suite=SPEC95,
        description="Isotropic Turbulence",
    )


def wave5(n: int = 65536, grid: int = 256) -> Program:
    """Plasma physics (Maxwell's equations) proxy: particle push with
    field gathers through cell indices plus a field-grid sweep."""
    src = """
program wave5
  param NP = 65536
  param NG = 256
  real*8 PX(NP), PV(NP), EFLD(NG,NG), BFLD(NG,NG)
  integer*4 CELL(NP)
  do i = 1, NP
    PV(i) = PV(i) + PX(CELL(i))
  end do
  do j = 2, NG-1
    do i = 2, NG-1
      EFLD(i,j) = EFLD(i,j) + 0.5 * (BFLD(i,j+1) - BFLD(i,j-1))
      BFLD(i,j) = BFLD(i,j) + 0.5 * (EFLD(i+1,j) - EFLD(i-1,j))
    end do
  end do
end
"""
    return parse_program(
        src,
        params={"NP": n, "NG": grid},
        suite=SPEC95,
        description="Maxwell's Equations",
    )


def doduc(n: int = 64) -> Program:
    """Thermohydraulic modelling proxy (Monte Carlo of a nuclear reactor
    component): many small equally sized state vectors."""
    src = """
program doduc
  param N = 64
  real*8 T1(N,N), T2(N,N), T3(N,N), P1(N,N), P2(N,N), H1(N,N), H2(N,N), FL(N,N)
  do j = 2, N-1
    do i = 2, N-1
      T3(i,j) = T1(i,j) + 0.3 * (T2(i,j) - T1(i,j)) + FL(i,j)
      P2(i,j) = P1(i,j) + 0.5 * (H1(i,j) - H2(i,j))
    end do
  end do
  do j = 2, N-1
    do i = 2, N-1
      H2(i,j) = H1(i,j) + P2(i,j) * T3(i,j)
      FL(i,j) = FL(i,j) + H2(i,j) - T3(i,j)
    end do
  end do
end
"""
    return parse_program(
        src, params={"N": n}, suite=SPEC92, description="Thermohydraulical Modelization"
    )


def _mdlj(name: str, real_type: str, n: int, neighbours: int) -> Program:
    src = f"""
program {name}
  param NP = {n}
  param NN = {neighbours}
  {real_type} X(NP), Y(NP), Z(NP), FX(NP), FY(NP), FZ(NP)
  integer*4 NLIST(NP)
  do i = 1, NP
    do k = 1, NN
      FX(i) = FX(i) + X(NLIST(i)) - X(i)
      FY(i) = FY(i) + Y(NLIST(i)) - Y(i)
      FZ(i) = FZ(i) + Z(NLIST(i)) - Z(i)
    end do
  end do
  do i = 1, NP
    X(i) = X(i) + FX(i)
    Y(i) = Y(i) + FY(i)
    Z(i) = Z(i) + FZ(i)
  end do
end
"""
    description = (
        "Molecular Dynamics (double prec)"
        if real_type == "real*8"
        else "Molecular Dynamics (single prec)"
    )
    return parse_program(src, suite=SPEC92, description=description)


def mdljdp2(n: int = 4096, neighbours: int = 4) -> Program:
    """Molecular dynamics, double precision: neighbour-list force loops."""
    return _mdlj("mdljdp2", "real*8", n, neighbours)


def mdljsp2(n: int = 4096, neighbours: int = 4) -> Program:
    """Molecular dynamics, single precision (4-byte elements change the
    byte geometry every pad condition sees)."""
    return _mdlj("mdljsp2", "real*4", n, neighbours)


def nasa7(n: int = 128) -> Program:
    """NASA Ames kernel collection proxy: the matrix-multiply and
    Cholesky members, which dominate its cache behaviour."""
    src = """
program nasa7
  param N = 128
  real*8 A(N,N), B(N,N), C(N,N)
  do j = 1, N
    do k = 1, N
      do i = 1, N
        C(i,j) = C(i,j) + A(i,k) * B(k,j)
      end do
    end do
  end do
  do k = 1, N
    do j = k+1, N
      do i = j, N
        A(i,j) = A(i,j) - A(i,k) * A(j,k)
      end do
    end do
  end do
end
"""
    return parse_program(
        src, params={"N": n}, suite=SPEC92, description="NASA Ames Fortran Kernels"
    )


def ora(n: int = 16) -> Program:
    """Ray tracing: essentially scalar computation — Table 2 reports zero
    global arrays.  Modelled as scalar accumulation with a token scratch
    vector so the program still produces a (tiny) trace."""
    src = """
program ora
  param N = 16
  real*8 ACC(N)
  real*8 RX, RY
  do i = 1, N
    ACC(i) = ACC(i) + RX * RY
  end do
end
"""
    return parse_program(src, params={"N": n}, suite=SPEC92, description="Ray Tracing")
