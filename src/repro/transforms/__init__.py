"""Computation-reordering transformations (the baseline family the paper
contrasts its data transformations against): dependence analysis and
legality-checked loop interchange."""

from repro.transforms.dependence import (
    Dependence,
    nest_dependences,
    nest_loop_order,
    permutation_legal,
)
from repro.transforms.transpose import best_transpose, transpose_array, transpose_safe
from repro.transforms.fusion import fuse, fuse_all, fuse_program, fusion_legal
from repro.transforms.interchange import (
    apply_interchange,
    best_locality_order,
    interchange,
    optimize_program_locality,
)

__all__ = [
    "Dependence",
    "apply_interchange",
    "best_transpose",
    "fuse",
    "fuse_all",
    "fuse_program",
    "fusion_legal",
    "best_locality_order",
    "interchange",
    "nest_dependences",
    "nest_loop_order",
    "optimize_program_locality",
    "permutation_legal",
    "transpose_array",
    "transpose_safe",
]
