"""Array transposition — the other *data* transformation family.

The related-work section cites array transpose (O'Boyle & Knijnenburg;
Cierniak & Li; Kandemir et al.) as a non-singular data transformation for
locality: instead of reordering the loops around a badly strided
reference, permute the array's dimensions (and rewrite every reference)
so the existing loop order walks it contiguously.  Together with padding
this completes the data-side toolbox: transpose fixes stride, padding
fixes placement.

Transposition is safe under the same conditions as intra-variable padding
(the layout must not be observable elsewhere) plus one more: every
reference to the array must be affine — an indirect subscript's values
are data, and renumbering dimensions under it would change semantics.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis.safety import analyze_safety
from repro.errors import AnalysisError
from repro.ir.arrays import ArrayDecl
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.ir.refs import ArrayRef
from repro.ir.stmts import Statement


def transpose_safe(prog: Program, name: str) -> Tuple[bool, str]:
    """May this array's dimensions be permuted?  (verdict, reason)."""
    decl = prog.array(name)
    if decl.rank < 2:
        return False, "rank-1 arrays have nothing to transpose"
    verdict = analyze_safety(prog)[name]
    if not verdict.intra_safe:
        return False, verdict.reason
    for ref in prog.refs_to(name):
        if not ref.is_affine:
            return False, f"non-affine reference {ref}"
    if name in prog.referenced_index_arrays():
        return False, "used as an index array"
    return True, "safe"


def transpose_array(
    prog: Program, name: str, perm: Sequence[int]
) -> Program:
    """A copy of the program with one array's dimensions permuted.

    ``perm[k]`` gives the original dimension stored at position ``k`` of
    the new declaration; every reference is rewritten accordingly (the
    program computes the same thing on a relaid-out array).
    """
    decl = prog.array(name)
    if sorted(perm) != list(range(decl.rank)):
        raise AnalysisError(
            f"perm {perm!r} is not a permutation of 0..{decl.rank - 1}"
        )
    safe, reason = transpose_safe(prog, name)
    if not safe:
        raise AnalysisError(f"cannot transpose {name!r}: {reason}")
    new_dims = [decl.dims[p] for p in perm]
    new_decl = ArrayDecl(
        decl.name,
        new_dims,
        decl.element_type,
        is_parameter=decl.is_parameter,
        storage_association=decl.storage_association,
        common_block=decl.common_block,
        common_splittable=decl.common_splittable,
        is_local=decl.is_local,
    )
    decls = [new_decl if d.name == name else d for d in prog.decls]

    def rewrite_ref(ref: ArrayRef) -> ArrayRef:
        if ref.array != name:
            return ref
        return ArrayRef(
            name, [ref.subscripts[p] for p in perm], is_write=ref.is_write,
            line=ref.line,
        )

    def rewrite_body(body) -> List:
        out = []
        for node in body:
            if isinstance(node, Loop):
                out.append(
                    Loop(node.var, node.lower, node.upper,
                         rewrite_body(node.body), step=node.step, line=node.line)
                )
            else:
                out.append(
                    Statement([rewrite_ref(r) for r in node.refs], node.label,
                              line=node.line)
                )
        return out

    return Program(
        prog.name,
        decls,
        rewrite_body(prog.body),
        source_lines=prog.source_lines,
        suite=prog.suite,
        description=prog.description,
    )


def _innermost_var(nest: Loop) -> str:
    current = nest
    while True:
        inner = [n for n in current.body if isinstance(n, Loop)]
        if not inner:
            return current.var
        current = inner[0]


def best_transpose(prog: Program, name: str) -> Tuple[int, ...]:
    """The dimension order making the innermost loops walk contiguously.

    Scores each dimension by how often the programs' innermost loop
    variables index it; the most-frequently-innermost dimension moves to
    position 0.  Returns the identity when the array is already best (or
    cannot be analyzed).
    """
    decl = prog.array(name)
    scores = [0] * decl.rank
    for nest in prog.loop_nests():
        inner_var = _innermost_var(nest)
        for ref in nest.refs():
            if ref.array != name:
                continue
            shape = ref.uniform_shape()
            if shape is None:
                continue
            for dim, var in enumerate(shape):
                if var == inner_var:
                    scores[dim] += 1
    order = sorted(range(decl.rank), key=lambda d: -scores[d])
    return tuple(order)
