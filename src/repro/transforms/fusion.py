"""Loop fusion with legality checking.

Fusion merges adjacent compatible nests, improving temporal locality but
concentrating more arrays into each iteration — which is exactly why
Manjikian & Abdelrahman (the paper's reference [15]) had to space arrays
apart on the cache *after* fusing: fusion increases cross-array conflict
opportunities.  The fusion ablation benchmark reproduces that interaction.

Legality (classic): two adjacent nests with identical loop headers may
fuse unless doing so creates a *fusion-preventing* dependence — a value
written by nest 1 at iteration ``i`` and read by nest 2 at an *earlier*
iteration ``i' < i`` (after fusion the read would happen before the
write).  With the IR's uniformly generated references this reduces to a
distance-vector sign check; non-analyzable (gather) pairs conservatively
block fusion.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import AnalysisError
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.transforms.dependence import _pair_distance, _NoDependence, nest_loop_order


def _headers_match(a: Sequence[Loop], b: Sequence[Loop]) -> bool:
    if len(a) != len(b):
        return False
    for la, lb in zip(a, b):
        if (la.var, la.lower, la.upper, la.step) != (lb.var, lb.lower, lb.upper, lb.step):
            return False
    return True


def fusion_legal(prog: Program, first: Loop, second: Loop) -> Tuple[bool, str]:
    """Can two adjacent nests fuse?  Returns (verdict, reason)."""
    try:
        loops_a = nest_loop_order(first)
        loops_b = nest_loop_order(second)
    except AnalysisError as exc:
        return False, str(exc)
    if not _headers_match(loops_a, loops_b):
        return False, "loop headers differ"
    loop_vars = [l.var for l in loops_a]
    refs_a = list(first.refs())
    refs_b = list(second.refs())
    for ra in refs_a:
        for rb in refs_b:
            if ra.array != rb.array:
                continue
            if not (ra.is_write or rb.is_write):
                continue
            try:
                distance = _pair_distance(ra, rb, loop_vars)
            except _NoDependence:
                continue
            # The distance is iteration(rb) - iteration(ra) for accesses
            # to the same element.  In the fused loop, nest-2's statement
            # at iteration t touches the element nest-1 touches at
            # iteration t - distance; that nest-1 access must already have
            # executed, i.e. the distance must be lexicographically
            # non-negative.  Negative (or unknown) distances are
            # fusion-preventing.
            for entry in distance:
                if entry is None:
                    return False, f"non-analyzable pair {ra} / {rb}"
                if entry < 0:
                    return (
                        False,
                        f"fusion-preventing dependence {ra} -> {rb} "
                        f"(distance {distance})",
                    )
                if entry > 0:
                    break
    return True, "ok"


def fuse(prog: Program, first: Loop, second: Loop) -> Loop:
    """Fuse two compatible adjacent nests into one.

    The fused nest runs nest-1's statements before nest-2's in every
    iteration.  Raises :class:`AnalysisError` when illegal.
    """
    legal, reason = fusion_legal(prog, first, second)
    if not legal:
        raise AnalysisError(f"cannot fuse: {reason}")
    loops_a = nest_loop_order(first)
    loops_b = nest_loop_order(second)
    body: List = list(loops_a[-1].body) + list(loops_b[-1].body)
    for template in reversed(loops_a):
        body = [Loop(template.var, template.lower, template.upper, body,
                     step=template.step, line=template.line)]
    return body[0]


def fuse_program(prog: Program, first_index: int) -> Program:
    """A copy of the program with nests ``first_index`` and the next one
    fused."""
    nests = prog.loop_nests()
    if not 0 <= first_index < len(nests) - 1:
        raise AnalysisError(f"no adjacent nest pair at index {first_index}")
    first, second = nests[first_index], nests[first_index + 1]
    positions = [i for i, node in enumerate(prog.body) if node is first or node is second]
    if positions[1] - positions[0] != 1:
        raise AnalysisError("nests are not adjacent in the program body")
    fused = fuse(prog, first, second)
    new_body = list(prog.body)
    new_body[positions[0]] = fused
    del new_body[positions[1]]
    return Program(
        prog.name,
        prog.decls,
        new_body,
        source_lines=prog.source_lines,
        suite=prog.suite,
        description=prog.description,
    )


def fuse_all(prog: Program) -> Tuple[Program, int]:
    """Greedily fuse every legal adjacent nest pair; returns (program,
    number of fusions performed)."""
    count = 0
    changed = True
    while changed:
        changed = False
        nests = prog.loop_nests()
        for index in range(len(nests) - 1):
            first, second = nests[index], nests[index + 1]
            positions = [
                i for i, node in enumerate(prog.body)
                if node is first or node is second
            ]
            if len(positions) != 2 or positions[1] - positions[0] != 1:
                continue
            if fusion_legal(prog, first, second)[0]:
                prog = fuse_program(prog, index)
                count += 1
                changed = True
                break
    return prog, count
