"""Data-dependence analysis for perfect loop nests.

The paper positions data-layout transformation against the classic
*computation-reordering* transformations (loop permutation, tiling —
references [9, 17, 23]); to compare the two experimentally we need enough
dependence analysis to know when reordering is legal.

For uniformly generated reference pairs (the same class the padding
analysis handles) the dependence distance in each loop dimension is just
the difference of the subscript constants carried by that loop variable:
``A(i+1, j)`` written and ``A(i, j)`` read is a distance vector ``(1, 0)``.
Loop variables not constrained by the pair get the unknown distance ``*``.
Pairs that are not uniformly generated (gathers, strided refs) produce a
conservative all-unknown vector.

A loop permutation is legal iff every dependence's *permuted* distance
vector remains lexicographically positive under the worst case for ``*``
entries (standard theory; see e.g. Allen & Kennedy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.ir.refs import ArrayRef

UNKNOWN = None  # the '*' distance


@dataclass(frozen=True)
class Dependence:
    """One dependence between two references to the same array.

    ``distance`` is indexed by nest loop order, outermost first; entries
    are ints or ``None`` (unknown).  ``kind`` is flow/anti/output/input
    purely for reporting — legality treats them alike (input dependences
    are not generated).
    """

    array: str
    source: ArrayRef
    sink: ArrayRef
    distance: Tuple[Optional[int], ...]
    kind: str

    def describe(self) -> str:
        """Human-readable rendering like ``A: (1, 0) flow``."""
        vec = ", ".join("*" if d is None else str(d) for d in self.distance)
        return f"{self.array}: ({vec}) {self.kind}"


def nest_loop_order(nest: Loop) -> List[Loop]:
    """The loops of a perfect nest, outermost first.

    Raises :class:`AnalysisError` when the nest is not perfect (a loop
    body containing both statements and loops, or several loops).
    """
    order = [nest]
    current = nest
    while True:
        inner_loops = [n for n in current.body if isinstance(n, Loop)]
        if not inner_loops:
            return order
        if len(inner_loops) != 1 or len(current.body) != 1:
            raise AnalysisError(
                f"loop nest over {nest.var!r} is not perfect"
            )
        current = inner_loops[0]
        order.append(current)


def _pair_distance(
    ref_a: ArrayRef, ref_b: ArrayRef, loop_vars: Sequence[str]
) -> Tuple[Optional[int], ...]:
    """Distance vector taking iteration(ref_a) to iteration(ref_b)."""
    shape_a = ref_a.uniform_shape()
    shape_b = ref_b.uniform_shape()
    if shape_a is None or shape_b is None or shape_a != shape_b:
        return tuple(UNKNOWN for _ in loop_vars)
    per_var: Dict[str, int] = {}
    for dim, var in enumerate(shape_a):
        if var is None:
            if ref_a.subscripts[dim].const != ref_b.subscripts[dim].const:
                # Different constant planes: no dependence at all; encode
                # as an impossible marker the caller filters out.
                raise _NoDependence()
            continue
        delta = ref_a.subscripts[dim].const - ref_b.subscripts[dim].const
        if var in per_var and per_var[var] != delta:
            raise _NoDependence()  # inconsistent constraints
        per_var[var] = delta
    return tuple(per_var.get(v, UNKNOWN) for v in loop_vars)


class _NoDependence(Exception):
    pass


def _lex_sign(distance: Tuple[Optional[int], ...]) -> int:
    """+1 lexicographically positive, -1 negative, 0 zero, 2 unknown."""
    for entry in distance:
        if entry is None:
            return 2
        if entry > 0:
            return 1
        if entry < 0:
            return -1
    return 0


def _negate(distance):
    return tuple(None if d is None else -d for d in distance)


def nest_dependences(prog: Program, nest: Loop) -> List[Dependence]:
    """All (flow/anti/output) dependences of one perfect nest.

    Distance vectors are normalized to be lexicographically non-negative
    (the dependence runs from the earlier iteration to the later one);
    unknown-leading vectors are kept as-is (conservatively both ways).
    """
    loops = nest_loop_order(nest)
    loop_vars = [l.var for l in loops]
    refs = list(nest.refs())
    out: List[Dependence] = []
    for i in range(len(refs)):
        for j in range(len(refs)):
            if i == j:
                continue
            a, c = refs[i], refs[j]
            if a.array != c.array:
                continue
            if not (a.is_write or c.is_write):
                continue
            if i > j and not (a.is_write and c.is_write):
                # unordered pair already visited in the other orientation
                pass
            try:
                distance = _pair_distance(a, c, loop_vars)
            except _NoDependence:
                continue
            sign = _lex_sign(distance)
            if sign == -1:
                continue  # the reversed orientation covers it
            if sign == 0 and i >= j:
                continue  # loop-independent: keep one orientation
            kind = (
                "flow"
                if a.is_write and not c.is_write
                else "anti"
                if c.is_write and not a.is_write
                else "output"
            )
            dep = Dependence(a.array, a, c, distance, kind)
            if not any(
                d.distance == dep.distance and d.kind == dep.kind
                and d.array == dep.array for d in out
            ):
                out.append(dep)
    return out


def permutation_legal(
    dependences: Sequence[Dependence], permutation: Sequence[int]
) -> bool:
    """Is applying ``permutation`` to the nest's loops legal?

    ``permutation[k]`` gives the original index of the loop placed at
    position ``k`` (outermost = 0).  Legal iff every permuted distance
    vector is lexicographically non-negative treating ``*`` as "could be
    negative" — a leading ``*`` or a negative entry before the first
    positive entry rejects the permutation.  The identity permutation is
    always legal (it is the original program, whatever the unknowns).
    """
    if list(permutation) == list(range(len(permutation))):
        return True
    for dep in dependences:
        permuted = [dep.distance[p] for p in permutation]
        for entry in permuted:
            if entry is None:
                return False  # could be negative at this outer position
            if entry > 0:
                break
            if entry < 0:
                return False
            # entry == 0: look further in
    return True
