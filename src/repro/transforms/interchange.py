"""Loop interchange (permutation) with legality checking.

The computation-reordering counterpart to padding: permuting a perfect
nest changes the traversal order, fixing *stride* problems (column-major
arrays walked along the wrong dimension) that no amount of padding can —
while padding fixes *placement* problems interchange cannot.  The
ablation benchmark demonstrates the complementarity.

Only perfect nests whose loop bounds are invariant under the permutation
(each loop's bounds reference no loop variable that would move inside it)
are transformed.
"""

from __future__ import annotations

from itertools import permutations as _permutations
from typing import List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.transforms.dependence import (
    nest_dependences,
    nest_loop_order,
    permutation_legal,
)


def _bounds_allow(loops: Sequence[Loop], permutation: Sequence[int]) -> bool:
    """Bounds may only use variables of loops still outside them."""
    new_order = [loops[p] for p in permutation]
    outer_vars: set = set()
    for loop in new_order:
        used = set(loop.lower.variables) | set(loop.upper.variables)
        if not used <= outer_vars:
            return False
        outer_vars.add(loop.var)
    return True


def interchange(prog: Program, nest: Loop, order: Sequence[str]) -> Loop:
    """Rebuild a perfect nest with its loops in the given variable order.

    Raises :class:`AnalysisError` when the permutation is illegal (a
    dependence would be reversed) or the bounds forbid it.
    """
    loops = nest_loop_order(nest)
    names = [l.var for l in loops]
    if sorted(order) != sorted(names):
        raise AnalysisError(
            f"order {order!r} is not a permutation of the nest loops {names!r}"
        )
    permutation = [names.index(var) for var in order]
    if permutation != list(range(len(names))):
        deps = nest_dependences(prog, nest)
        if not permutation_legal(deps, permutation):
            raise AnalysisError(
                f"interchange to {order!r} reverses a dependence: "
                + "; ".join(d.describe() for d in deps)
            )
        if not _bounds_allow(loops, permutation):
            raise AnalysisError(
                f"interchange to {order!r} moves a loop inside a bound that "
                f"uses its variable"
            )
    body = loops[-1].body
    rebuilt = body
    for index in reversed(permutation):
        template = loops[index]
        rebuilt = [
            Loop(template.var, template.lower, template.upper, rebuilt,
                 step=template.step, line=template.line)
        ]
    return rebuilt[0]


def apply_interchange(prog: Program, nest_index: int, order: Sequence[str]) -> Program:
    """A copy of the program with one nest permuted."""
    nests = prog.loop_nests()
    if not 0 <= nest_index < len(nests):
        raise AnalysisError(f"no loop nest {nest_index}")
    target = nests[nest_index]
    new_body = [
        interchange(prog, node, order) if node is target else node
        for node in prog.body
    ]
    return Program(
        prog.name,
        prog.decls,
        new_body,
        source_lines=prog.source_lines,
        suite=prog.suite,
        description=prog.description,
    )


def _stride_cost(prog: Program, nest: Loop, order: Sequence[str]) -> float:
    """Lower is better: average per-reference stride rank of the loop that
    would be innermost under ``order``."""
    innermost = order[-1]
    cost = 0.0
    refs = list(nest.refs())
    for ref in refs:
        shape = ref.uniform_shape()
        if shape is None:
            cost += 1.0  # gather: order-insensitive, mild penalty
            continue
        if innermost not in shape:
            cost += 0.5  # invariant ref: fine
            continue
        dim = shape.index(innermost)
        decl = prog.array(ref.array)
        # Penalize by the byte stride the innermost loop induces.
        cost += min(1.0, decl.strides()[dim] / 512.0)
    return cost / max(1, len(refs))


def optimize_program_locality(prog: Program) -> Tuple[Program, List[str]]:
    """Apply the best legal locality order to every perfect nest.

    Returns the transformed program and a log of the interchanges made.
    Imperfect nests and already-optimal nests are left alone.
    """
    log: List[str] = []
    new_body = list(prog.body)
    for index, node in enumerate(prog.body):
        if not isinstance(node, Loop):
            continue
        order = best_locality_order(prog, node)
        if order is None:
            continue
        new_body[index] = interchange(prog, node, order)
        log.append(f"nest {index}: -> {','.join(order)}")
    out = Program(
        prog.name,
        prog.decls,
        new_body,
        source_lines=prog.source_lines,
        suite=prog.suite,
        description=prog.description,
    )
    return out, log


def best_locality_order(prog: Program, nest: Loop) -> Optional[Tuple[str, ...]]:
    """The legal permutation minimizing innermost-loop stride cost.

    Returns None when the original order is already (tied-)best or the
    nest is not perfect.
    """
    try:
        loops = nest_loop_order(nest)
    except AnalysisError:
        return None
    names = [l.var for l in loops]
    if len(names) > 4:
        return None
    deps = nest_dependences(prog, nest)
    best_order = tuple(names)
    best_cost = _stride_cost(prog, nest, names)
    for perm in _permutations(range(len(names))):
        order = tuple(names[p] for p in perm)
        if order == tuple(names):
            continue
        if not permutation_legal(deps, list(perm)):
            continue
        if not _bounds_allow(loops, list(perm)):
            continue
        cost = _stride_cost(prog, nest, order)
        if cost < best_cost - 1e-9:
            best_cost = cost
            best_order = order
    return None if best_order == tuple(names) else best_order
