"""Multi-level padding (the paper's Section 2.1.2 generalization).

"The only modification is to compute conflict distances with respect to
each cache configuration and then to pad as needed if any distance is less
than the corresponding cache line size."  This example pads JACOBI for an
L1+L2 hierarchy at once and simulates both levels.

Run: python examples/multilevel_cache.py
"""

from repro import CacheConfig, original, pad
from repro.bench.kernels import jacobi
from repro.cache import CacheHierarchy
from repro.padding import PadParams
from repro.trace import trace_program

L1 = CacheConfig(size_bytes=8 * 1024, line_bytes=32, associativity=1)
L2 = CacheConfig(size_bytes=64 * 1024, line_bytes=64, associativity=1)


def run(label, layout, prog):
    hierarchy = CacheHierarchy([L1, L2])
    for addrs, writes in trace_program(prog, layout):
        hierarchy.access_chunk(addrs, writes)
    l1, l2 = hierarchy.all_stats()
    print(f"{label:28s} L1 {l1.miss_rate_pct:6.2f}%   "
          f"L2 (of L1 misses) {l2.miss_rate_pct:6.2f}%")
    return l1, l2


def main():
    prog = jacobi(512)
    print(f"JACOBI 512x512 real*8 under {L1.describe()} + {L2.describe()}\n")

    run("original", original(prog).layout, prog)

    l1_only = pad(prog, PadParams.for_cache(L1))
    run("PAD for L1 only", l1_only.layout, l1_only.prog)

    both = pad(prog, PadParams(caches=(L1, L2)))
    run("PAD for both levels", both.layout, both.prog)

    print("\npad decisions (both levels):", both.describe())


if __name__ == "__main__":
    main()
