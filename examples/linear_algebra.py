"""Linear-algebra padding: LINPAD2 and the FirstConflict algorithm.

Cholesky factorization touches columns j and k together as both vary, so
any small j with j*ColumnSize near a multiple of the cache size causes
semi-severe conflicts.  This example:

1. shows FirstConflict for a range of column sizes (spot the dangerous
   ones — small values mean nearby columns collide);
2. pads CHOL with PAD (whose LINPAD2 component is gated on the Figure-3
   linear-algebra pattern) and compares miss rates.

Run: python examples/linear_algebra.py
"""

from repro import base_cache, first_conflict
from repro.analysis.patterns import linear_algebra_arrays
from repro.bench.kernels import chol
from repro.experiments.runner import Runner
from repro.padding import linpad2_jstar


def main():
    cache = base_cache()
    es = 8  # real*8

    print("FirstConflict for CHOL column sizes (16K cache, 32B lines):")
    print(f"{'N':>5} {'col bytes':>10} {'FirstConflict':>14} {'j*':>5} {'verdict'}")
    for n in (250, 256, 273, 300, 320, 384, 448, 512):
        col = n * es
        fc = first_conflict(cache.size_bytes, col, cache.line_bytes)
        jstar = linpad2_jstar(n, cache.size_bytes, cache.line_bytes, 129)
        verdict = "REJECT (columns collide)" if fc < jstar else "ok"
        print(f"{n:>5} {col:>10} {fc:>14} {jstar:>5} {verdict}")

    prog = chol(512)
    print(f"\nlinear-algebra pattern detected on: {sorted(linear_algebra_arrays(prog))}")

    runner = Runner()
    print(f"\nCHOL miss rates on {cache.describe()}:")
    for n in (256, 384, 512):
        orig = runner.miss_rate("chol", "original", size=n)
        padded = runner.miss_rate("chol", "pad", size=n)
        result = runner.padding("chol", "pad", size=n)
        pads = {a: result.layout.intra_pads(a) for a in result.arrays_padded}
        print(f"  N={n}: original {orig:6.2f}%  PAD {padded:6.2f}%   column pads: {pads}")


if __name__ == "__main__":
    main()
