"""Quickstart: eliminate the paper's Figure-1 conflict with padding.

Two 16KB vectors laid out back to back land exactly one cache size apart
on a 16K direct-mapped cache, so ``A(i)`` and ``B(i)`` evict each other on
every iteration.  PAD moves B's base address; miss rate drops from 100%
to the spatial-reuse floor.

Run: python examples/quickstart.py
"""

from repro import base_cache, original, pad, parse_program, simulate_program

DOT_SRC = """
program dot
  param N = 2048
  real*8 A(N), B(N)
  real*8 S
  do i = 1, N
    S = S + A(i) * B(i)
  end do
end
"""


def main():
    prog = parse_program(DOT_SRC)
    cache = base_cache()
    print(f"cache: {cache.describe()}")

    baseline = original(prog)
    stats = simulate_program(prog, baseline.layout, cache)
    print(f"original layout: A at {baseline.layout.base('A')}, "
          f"B at {baseline.layout.base('B')}")
    print(f"  miss rate: {stats.miss_rate_pct:.1f}%  ({stats.describe()})")

    padded = pad(prog)
    stats_padded = simulate_program(prog, padded.layout, cache)
    print(f"after PAD: B moved to {padded.layout.base('B')} "
          f"({padded.bytes_skipped} pad bytes inserted)")
    print(f"  miss rate: {stats_padded.miss_rate_pct:.1f}%  "
          f"({stats_padded.describe()})")

    improvement = stats.miss_rate_pct - stats_padded.miss_rate_pct
    print(f"improvement: {improvement:.1f} percentage points")


if __name__ == "__main__":
    main()
