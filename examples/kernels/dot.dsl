# Dot product over vectors sized to dodge the base cache: 2000 doubles
# are 16000 bytes, so X and Y start 384 bytes apart modulo the 16K cache
# — well clear of the 32-byte line.  Lints clean at --fail-on warning.
program dot
param N = 2000
real*8 X(N), Y(N), S(1)
do i = 1, N
  S(1) = S(1) + X(i) * Y(i)
end do
end
