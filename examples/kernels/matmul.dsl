# Textbook matrix multiply in the column-major-friendly j/k/i order with
# a 150 x 150 problem: columns are 1200 bytes, so no power-of-two folding
# and FirstConflict stays comfortable.  Lints clean at --fail-on warning.
program matmul
param N = 150
real*8 A(N, N), B(N, N), C(N, N)
do j = 1, N
  do k = 1, N
    do i = 1, N
      C(i, j) = C(i, j) + A(i, k) * B(k, j)
    end do
  end do
end do
end
