# Five-point Jacobi sweep with a cache-friendly leading dimension:
# columns are 500 * 8 = 4000 bytes (not a power of two) and the inner
# loop walks the leading dimension.  Lints clean at --fail-on warning.
program stencil
param N = 500
param M = 100
real*8 A(N, M), B(N, M)
do j = 2, M - 1
  do i = 2, N - 1
    B(i, j) = A(i, j) + A(i - 1, j) + A(i + 1, j) + A(i, j - 1) + A(i, j + 1)
  end do
end do
end
