"""Why padding cannot help irregular codes (the IRR benchmark).

Gathers through an index array are not uniformly generated: there is no
compile-time constant conflict distance, so PAD finds nothing to do — and
Table 2 duly reports 0 arrays padded for IRR.  This example shows the
compiler's view (no analyzable pairs, zero decisions), the simulator's
view (padding leaves the miss rate untouched), and the 3C decomposition
proving those misses are capacity misses, not conflicts.

Run: python examples/irregular_mesh.py
"""

from repro import base_cache, fully_associative, make_simulator, original, pad
from repro.analysis import uniform_ref_fraction
from repro.analysis.diagnostics import severe_conflicts
from repro.bench.kernels import irr
from repro.cache.stats import classify_misses
from repro.trace import trace_program


def _simulate(prog, layout, cache):
    sim = make_simulator(cache)
    for addrs, writes in trace_program(prog, layout):
        sim.access_chunk(addrs, writes)
    return sim.stats


def main():
    prog = irr(100000)
    cache = base_cache()

    print(f"IRR: relaxation over an irregular mesh ({cache.describe()})")
    print(f"uniformly generated references: "
          f"{100 * uniform_ref_fraction(prog):.0f}% "
          f"(the X(IDX(i)) gather is not analyzable)")

    baseline = original(prog)
    print(f"severe conflicts found by analysis: "
          f"{len(severe_conflicts(prog, baseline.layout, cache))}")

    padded = pad(prog)
    print(f"PAD decisions: {len(padded.intra_decisions)} intra, "
          f"{padded.bytes_skipped} bytes inter")

    before = _simulate(prog, baseline.layout, cache)
    after = _simulate(padded.prog, padded.layout, cache)
    print(f"miss rate: original {before.miss_rate_pct:.2f}%  "
          f"PAD {after.miss_rate_pct:.2f}%  (unchanged, as the paper reports)")

    fa = _simulate(prog, baseline.layout, fully_associative(cache.size_bytes))
    breakdown = classify_misses(before, fa)
    print(f"3C decomposition of the original misses: "
          f"cold {breakdown.cold}, capacity {breakdown.capacity}, "
          f"conflict {breakdown.conflict} "
          f"({100 * breakdown.conflict_fraction:.1f}% conflicts)")
    print("the gather's misses are capacity misses: no layout fixes them")


if __name__ == "__main__":
    main()
