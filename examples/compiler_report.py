"""Compiler-style padding report (Table 2 for your own kernel).

Feeds a DSL program through the full compiler pipeline — globalization,
safety analysis, PAD — and prints what the compiler saw and did: uniform
reference fraction, safe arrays, pad decisions, final layout.

Run: python examples/compiler_report.py [path/to/kernel.dsl]
"""

import sys

from repro import base_cache, parse_program, pad, simulate_program, original
from repro.analysis import collect_stats
from repro.padding import format_table2, table2_row

DEFAULT_SRC = """
program demo
  param N = 512
  real*8 A(N,N), B(N,N), C(N,N)
  real*8 WORK(N)
  unsafe WORK
  do i = 2, N-1
    do j = 2, N-1
      C(j,i) = A(j,i) + A(j,i-1) + A(j,i+1) + B(j,i)
    end do
  end do
end
"""


def main(path=None):
    src = open(path).read() if path else DEFAULT_SRC
    prog = parse_program(src)

    stats = collect_stats(prog)
    print("compile-time analysis:")
    print(f"  {stats.describe()}")
    print(f"  loop nests: {stats.loop_nests}, refs: {stats.total_refs}")

    result = pad(prog)
    print("\npadding decisions:")
    for d in result.intra_decisions:
        print(f"  intra  {d.array}: dim {d.dim_index} += {d.elements} "
              f"({d.heuristic}; {d.reason})")
    for d in result.inter_decisions:
        if d.pad_bytes:
            print(f"  inter  {d.unit}: {d.tentative} -> {d.final} "
                  f"(+{d.pad_bytes} bytes)")
    if not result.intra_decisions and result.bytes_skipped == 0:
        print("  (none needed)")

    print("\nfinal layout:")
    for decl in result.prog.decls:
        sizes = ""
        if hasattr(decl, "dims"):
            sizes = "(" + ", ".join(map(str, result.layout.dim_sizes(decl.name))) + ")"
        print(f"  {decl.name}{sizes} at {result.layout.base(decl.name)}")

    print("\nTable-2 row:")
    print(format_table2([table2_row(result)]))

    cache = base_cache()
    before = simulate_program(prog, original(prog).layout, cache)
    after = simulate_program(result.prog, result.layout, cache)
    print(f"\nmiss rate on {cache.describe()}: "
          f"{before.miss_rate_pct:.2f}% -> {after.miss_rate_pct:.2f}%")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
