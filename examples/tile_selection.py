"""Tile-size selection vs padding: two uses of the Euclidean algorithm.

The paper's LINPAD2 derives from Coleman & McKinley's tile-size selection;
this example shows both sides.  For a tiled matrix multiply:

1. enumerate the Euclidean tile candidates for the matrix's column size;
2. simulate a few tile shapes including the selected one;
3. compare against PAD on the untiled loop.

Run: python examples/tile_selection.py [N]
"""

import sys

from repro import base_cache, simulate_program
from repro.extensions.tiling import select_tile, tile_candidates, tiled_matmul
from repro.padding.drivers import original, pad


def main(n: int = 128):
    cache = base_cache()
    print(f"matrix {n}x{n} real*8, cache {cache.describe()}\n")

    print("Euclidean tile candidates (height x width, cache utilization):")
    for cand in tile_candidates(cache, n * 8, 8):
        print(f"  {cand.describe()}")
    choice = select_tile(cache, n, 8, max_height=n, max_width=n)
    print(f"selected: {choice.describe()}\n")

    print("simulated miss rates for tiled matmul:")
    for th, tw in ((4, 4), (32, 32), (n, 8)):
        if n % th or n % tw:
            continue
        prog = tiled_matmul(n, th, tw)
        rate = simulate_program(prog, original(prog).layout, cache).miss_rate_pct
        print(f"  tile {th:>3}x{tw:<3}: {rate:6.2f}%")

    th = max(d for d in (1, 2, 4, 8, 16, 32, 64, 128) if d <= choice.height and n % d == 0)
    tw = max(d for d in (1, 2, 4, 8, 16, 32) if d <= max(1, choice.width) and n % d == 0)
    prog = tiled_matmul(n, th, tw)
    rate = simulate_program(prog, original(prog).layout, cache).miss_rate_pct
    print(f"  selected {th}x{tw}: {rate:6.2f}%")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 128)
