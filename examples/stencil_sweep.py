"""Stencil problem-size sweep (a miniature of the paper's Figure 16).

Runs the JACOBI kernel across problem sizes on the base cache and prints
the original / PADLITE / PAD miss-rate curves.  Severe spikes appear at
sizes whose column size interacts with the cache size (powers of two);
padding flattens them.

Run: python examples/stencil_sweep.py [step]
"""

import sys

from repro.experiments.reporting import format_series
from repro.experiments.runner import Runner


def main(step: int = 32):
    runner = Runner()
    sizes = list(range(256, 521, step))
    curves = {"original": [], "padlite": [], "pad": []}
    for n in sizes:
        for heuristic in curves:
            curves[heuristic].append(
                runner.miss_rate("jacobi", heuristic, size=n)
            )
    print(format_series(
        "JACOBI miss rate (%) vs problem size, 16K direct-mapped",
        "N", sizes, curves,
    ))
    spikes = [
        n for n, orig, padded in zip(sizes, curves["original"], curves["pad"])
        if orig - padded > 5.0
    ]
    print(f"\nsizes where PAD removed a severe conflict (>5 points): {spikes}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 32)
