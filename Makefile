# Convenience targets; everything is plain pytest underneath.

.PHONY: test bench bench-full figures examples lint-docstrings clean

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only

figures:
	python -m repro figure table2
	python -m repro figure fig8

examples:
	for ex in examples/*.py; do python $$ex; done

lint-docstrings:
	pytest tests/test_docstrings.py -q

clean:
	rm -rf .pytest_cache benchmarks/out benchmarks/out-full .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
