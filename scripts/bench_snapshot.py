#!/usr/bin/env python
"""Performance snapshots for the campaign/runner pipeline (CI artifact).

Runs a small benchmark sweep three ways and writes a ``BENCH_<n>.json``
snapshot next to the previous ones, so consecutive commits leave a
perf paper trail that can be diffed:

1. **cold** — a fresh campaign through the coordinator and worker
   pool: end-to-end simulate throughput with nothing cached.
2. **resume** — the same campaign resumed: every item must come back
   ``cached`` from the durable SQLite disk tier, which isolates the
   commit/replay overhead from simulation time.
3. **memo** — the same requests through a single in-process
   :class:`~repro.experiments.runner.Runner` backed by the campaign's
   disk tier, twice: the repeat pass measures the in-memory memo tier.

The snapshot also embeds the relevant ``repro_campaign_*`` and
``repro_runner_memo_hits_total`` counters from the metrics registry so
hit-rate regressions show up alongside throughput ones.

Usage::

    PYTHONPATH=src python scripts/bench_snapshot.py \
        [--out DIR] [--benchmarks dot,jacobi,mult] [--jobs 2] [--label msg]
"""

import argparse
import json
import pathlib
import re
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.campaign import Coordinator, compile_plan  # noqa: E402
from repro.campaign.disktier import DiskTier  # noqa: E402
from repro.campaign.spec import parse_spec  # noqa: E402
from repro.experiments.runner import Runner  # noqa: E402
from repro.obs import runtime as obs  # noqa: E402

DEFAULT_BENCHMARKS = "dot,jacobi,mult"


def next_snapshot_path(out_dir: pathlib.Path) -> pathlib.Path:
    """BENCH_<n>.json with n one past the largest already present."""
    highest = 0
    for path in out_dir.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            highest = max(highest, int(match.group(1)))
    return out_dir / f"BENCH_{highest + 1}.json"


def counter_total(snapshot: dict, name: str, **labels) -> float:
    """Sum a counter family, optionally restricted to matching labels."""
    total = 0.0
    for row in snapshot.get("counters", ()):
        if row["name"] != name:
            continue
        if any(row["labels"].get(k) != v for k, v in labels.items()):
            continue
        total += row["value"]
    return total


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(ROOT),
                        help="directory for BENCH_<n>.json (default repo "
                             "root)")
    parser.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS,
                        help=f"comma-separated benchmark names "
                             f"(default {DEFAULT_BENCHMARKS})")
    parser.add_argument("--jobs", type=int, default=2,
                        help="campaign worker processes (default 2)")
    parser.add_argument("--label", default="",
                        help="free-form note stored in the snapshot")
    args = parser.parse_args()

    out_dir = pathlib.Path(args.out)
    if not out_dir.is_dir():
        print(f"error: --out {out_dir} is not a directory", file=sys.stderr)
        return 2
    benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]

    obs.reset()
    obs.enable()
    spec = parse_spec({
        "name": "bench-snapshot",
        "benchmarks": benchmarks,
        "heuristics": ["pad"],
        "caches": [{"size": "8K", "line": 32}, {"size": "16K", "line": 32}],
        "seed": 1998,
    })
    plan = compile_plan(spec)

    with tempfile.TemporaryDirectory(prefix="bench-snapshot-") as tmp:
        workdir = pathlib.Path(tmp) / "campaign"
        coordinator = Coordinator(plan, workdir, jobs=max(1, args.jobs))
        cold, cold_s = timed(lambda: coordinator.run())
        if not cold.ok:
            print("error: cold campaign had failures; refusing to "
                  "snapshot a broken run", file=sys.stderr)
            return 1

        resumer = Coordinator(plan, workdir, jobs=max(1, args.jobs))
        warm, warm_s = timed(lambda: resumer.run(resume=True))
        if warm.cached != len(plan.items):
            print(f"error: resume re-simulated items "
                  f"({warm.cached}/{len(plan.items)} cached)",
                  file=sys.stderr)
            return 1

        tier = DiskTier(coordinator.tier_path)
        try:
            runner = Runner(tier=tier)

            def run_all():
                for item in plan.items:
                    r = item.request
                    runner.run(
                        r.program, heuristic=r.heuristic, cache=r.cache,
                        size=r.size, pad_cache=r.pad_cache,
                        m_lines=r.m_lines, max_outer=r.max_outer,
                        seed=r.seed,
                    )

            _, disk_pass_s = timed(run_all)
            _, memo_pass_s = timed(run_all)
        finally:
            tier.close()

    snap = obs.snapshot()
    items = len(plan.items)
    document = {
        "schema": 1,
        "label": args.label,
        "campaign": plan.campaign_id,
        "plan": plan.digest,
        "benchmarks": benchmarks,
        "items": items,
        "cold": {
            "duration_s": round(cold_s, 6),
            "items_per_s": round(items / cold_s, 3) if cold_s else None,
        },
        "resume": {
            "duration_s": round(warm_s, 6),
            "cached": warm.cached,
            "items_per_s": round(items / warm_s, 3) if warm_s else None,
        },
        "runner": {
            "disk_pass_s": round(disk_pass_s, 6),
            "memo_pass_s": round(memo_pass_s, 6),
        },
        "tiers": {
            "sqlite_hits": counter_total(
                snap, "repro_runner_memo_hits_total", tier="sqlite"),
            "memory_hits": counter_total(
                snap, "repro_runner_memo_hits_total", tier="memory"),
            "tier_lookups_hit": counter_total(
                snap, "repro_campaign_tier_lookups_total", outcome="hit"),
            "tier_lookups_miss": counter_total(
                snap, "repro_campaign_tier_lookups_total", outcome="miss"),
            "tier_quarantined": counter_total(
                snap, "repro_campaign_tier_quarantined_total"),
        },
        "campaign_counters": {
            "commits": counter_total(snap, "repro_campaign_commits_total"),
            "leases": counter_total(
                snap, "repro_campaign_items_leased_total"),
            "retries": counter_total(snap, "repro_campaign_retries_total"),
            "fallbacks": counter_total(
                snap, "repro_campaign_fallbacks_total"),
        },
    }
    path = next_snapshot_path(out_dir)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    print(f"  cold:   {items} items in {cold_s:.2f}s "
          f"({document['cold']['items_per_s']}/s)")
    print(f"  resume: all cached in {warm_s:.2f}s")
    print(f"  runner: disk pass {disk_pass_s:.3f}s, "
          f"memo pass {memo_pass_s:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
