#!/usr/bin/env python
"""Performance snapshots for the campaign/runner pipeline (CI artifact).

Runs a small benchmark sweep three ways and writes a ``BENCH_<n>.json``
snapshot next to the previous ones, so consecutive commits leave a
perf paper trail that can be diffed:

1. **cold** — a fresh campaign through the coordinator and worker
   pool: end-to-end simulate throughput with nothing cached.
2. **resume** — the same campaign resumed: every item must come back
   ``cached`` from the durable SQLite disk tier, which isolates the
   commit/replay overhead from simulation time.
3. **memo** — the same requests through a single in-process
   :class:`~repro.experiments.runner.Runner` backed by the campaign's
   disk tier, twice: the repeat pass measures the in-memory memo tier.

The snapshot also embeds the relevant ``repro_campaign_*`` and
``repro_runner_memo_hits_total`` counters from the metrics registry so
hit-rate regressions show up alongside throughput ones.

Usage::

    PYTHONPATH=src python scripts/bench_snapshot.py \
        [--out DIR] [--benchmarks dot,jacobi,mult] [--jobs 2] [--label msg]

``--compare`` switches to the trace-JIT before/after mode: each program
in :func:`repro.jit.corpus.perf_corpus` is simulated end to end with
``jit="off"`` and ``jit="on"``, the two cache-stat results are required
to be identical, and the snapshot records per-case and aggregate
speedups.  ``--min-speedup X`` turns the aggregate into a CI gate
(exit 1 below X); ``--number N`` pins the output to ``BENCH_N.json``
instead of auto-numbering::

    PYTHONPATH=src python scripts/bench_snapshot.py \
        --compare --number 7 --min-speedup 5 [--repeats 3] [--out DIR]

``--compare --predict`` instead gates the analytic miss-prediction tier:
every case in :func:`repro.analysis.predict_corpus.eligible_corpus` is
simulated end to end (trace JIT + fast cache engine) and predicted in
closed form, the two results are required to be byte-identical, and the
aggregate simulate/predict throughput ratio must clear ``--min-speedup``::

    PYTHONPATH=src python scripts/bench_snapshot.py \
        --compare --predict --number 9 --min-speedup 50 [--out DIR]

``--compare --optimize`` gates the layout search (``pad --optimize``)
against greedy padding over the seeded corpus
(:data:`repro.optimize.corpus.CORPUS`): the search must never predict
more conflict misses than the greedy incumbent on ANY kernel, must
strictly beat it on every ``expect_win`` kernel, and every emitted
layout must be guard-clean::

    PYTHONPATH=src python scripts/bench_snapshot.py \
        --compare --optimize --number 10 [--out DIR]
"""

import argparse
import json
import pathlib
import re
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.campaign import Coordinator, compile_plan  # noqa: E402
from repro.campaign.disktier import DiskTier  # noqa: E402
from repro.campaign.spec import parse_spec  # noqa: E402
from repro.experiments.runner import Runner  # noqa: E402
from repro.obs import runtime as obs  # noqa: E402

DEFAULT_BENCHMARKS = "dot,jacobi,mult"


def next_snapshot_path(out_dir: pathlib.Path) -> pathlib.Path:
    """BENCH_<n>.json with n one past the largest already present."""
    highest = 0
    for path in out_dir.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            highest = max(highest, int(match.group(1)))
    return out_dir / f"BENCH_{highest + 1}.json"


def counter_total(snapshot: dict, name: str, **labels) -> float:
    """Sum a counter family, optionally restricted to matching labels."""
    total = 0.0
    for row in snapshot.get("counters", ()):
        if row["name"] != name:
            continue
        if any(row["labels"].get(k) != v for k, v in labels.items()):
            continue
        total += row["value"]
    return total


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def compare_main(args, out_dir: pathlib.Path) -> int:
    """JIT before/after: simulate the perf corpus both ways, gate on
    aggregate speedup, write a BENCH snapshot of the comparison."""
    from repro.cache.config import base_cache
    from repro.cache.fastsim import make_simulator
    from repro.jit import make_interpreter
    from repro.jit.corpus import perf_corpus

    obs.reset()
    obs.enable()

    def simulate(prog, layout, jit):
        sim = make_simulator(base_cache())
        return sim.access_stream(
            make_interpreter(prog, layout, jit=jit).trace()
        )

    cases = []
    total_off = total_on = 0.0
    for prog, layout in perf_corpus():
        best = {}
        stats = {}
        for jit in ("off", "on"):
            samples = []
            for _ in range(max(1, args.repeats)):
                stats[jit], elapsed = timed(
                    lambda j=jit: simulate(prog, layout, j)
                )
                samples.append(elapsed)
            best[jit] = min(samples)
        if stats["off"] != stats["on"]:
            print(f"error: {prog.name}: jit=on changed the simulation "
                  f"result; refusing to snapshot", file=sys.stderr)
            return 1
        total_off += best["off"]
        total_on += best["on"]
        accesses = stats["off"].accesses
        cases.append({
            "name": prog.name,
            "accesses": accesses,
            "interp_s": round(best["off"], 6),
            "jit_s": round(best["on"], 6),
            "speedup": round(best["off"] / best["on"], 3),
            "jit_accesses_per_s": round(accesses / best["on"], 1),
        })
        print(f"  {prog.name:20s} {accesses:>9d} accesses  "
              f"interp {best['off']:.3f}s  jit {best['on']:.3f}s  "
              f"{best['off'] / best['on']:.1f}x")

    aggregate = total_off / total_on if total_on else 0.0
    snap = obs.snapshot()
    document = {
        "schema": 1,
        "kind": "jit-compare",
        "label": args.label,
        "repeats": max(1, args.repeats),
        "cases": cases,
        "aggregate_speedup": round(aggregate, 3),
        "min_speedup": args.min_speedup,
        "jit_counters": {
            "compiled": counter_total(snap, "repro_jit_compiled_total"),
            "deopts": counter_total(snap, "repro_jit_deopt_total"),
            "chunks": counter_total(snap, "repro_jit_chunks_total"),
        },
    }
    if args.number is not None:
        path = out_dir / f"BENCH_{args.number}.json"
    else:
        path = next_snapshot_path(out_dir)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    print(f"  aggregate: {aggregate:.1f}x interpreter throughput")
    if args.min_speedup and aggregate < args.min_speedup:
        print(f"error: aggregate speedup {aggregate:.2f}x below the "
              f"--min-speedup {args.min_speedup}x gate", file=sys.stderr)
        return 1
    return 0


def predict_compare_main(args, out_dir: pathlib.Path) -> int:
    """Analytic tier before/after: simulate and predict the eligible
    corpus, require byte-identical counts, gate on throughput ratio."""
    from repro.analysis.predict import predict_misses
    from repro.analysis.predict_corpus import eligible_corpus
    from repro.cache.fastsim import make_simulator
    from repro.jit import make_interpreter

    obs.reset()
    obs.enable()

    def simulate(case):
        sim = make_simulator(case.cache)
        return sim.access_stream(
            make_interpreter(case.prog, case.layout, jit="on").trace()
        )

    cases = []
    total_sim = total_pred = 0.0
    for case in eligible_corpus():
        sim_samples, pred_samples = [], []
        sim_stats = outcome = None
        for _ in range(max(1, args.repeats)):
            sim_stats, elapsed = timed(lambda c=case: simulate(c))
            sim_samples.append(elapsed)
            outcome, elapsed = timed(
                lambda c=case: predict_misses(c.prog, c.layout, c.cache)
            )
            pred_samples.append(elapsed)
        if not outcome.analyzable:
            reasons = "; ".join(b.render() for b in outcome.bailouts)
            print(f"error: {case.name}: predictor bailed out of an "
                  f"eligible case ({reasons}); refusing to snapshot",
                  file=sys.stderr)
            return 1
        if outcome.prediction.stats != sim_stats:
            print(f"error: {case.name}: predicted counts diverge from "
                  f"simulation; refusing to snapshot", file=sys.stderr)
            return 1
        best_sim = min(sim_samples)
        best_pred = min(pred_samples)
        total_sim += best_sim
        total_pred += best_pred
        pred = outcome.prediction
        cases.append({
            "name": case.name,
            "accesses": pred.stats.accesses,
            "sim_s": round(best_sim, 6),
            "predict_s": round(best_pred, 6),
            "speedup": round(best_sim / best_pred, 3),
            "fold_ratio": round(pred.fold_ratio, 2),
            "replayed_accesses": pred.replayed_accesses,
        })
        print(f"  {case.name:20s} {pred.stats.accesses:>9d} accesses  "
              f"sim {best_sim:.3f}s  predict {best_pred:.3f}s  "
              f"{best_sim / best_pred:.1f}x  (fold {pred.fold_ratio:.0f}x)")

    aggregate = total_sim / total_pred if total_pred else 0.0
    snap = obs.snapshot()
    document = {
        "schema": 1,
        "kind": "predict-compare",
        "label": args.label,
        "repeats": max(1, args.repeats),
        "cases": cases,
        "aggregate_speedup": round(aggregate, 3),
        "min_speedup": args.min_speedup,
        "predict_counters": {
            "requests": counter_total(snap, "repro_predict_requests_total"),
            "predictions": counter_total(
                snap, "repro_predict_predictions_total"),
            "bailouts": counter_total(snap, "repro_predict_bailouts_total"),
        },
    }
    if args.number is not None:
        path = out_dir / f"BENCH_{args.number}.json"
    else:
        path = next_snapshot_path(out_dir)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    print(f"  aggregate: {aggregate:.1f}x simulation throughput")
    if args.min_speedup and aggregate < args.min_speedup:
        print(f"error: aggregate speedup {aggregate:.2f}x below the "
              f"--min-speedup {args.min_speedup}x gate", file=sys.stderr)
        return 1
    return 0


def optimize_compare_main(args, out_dir: pathlib.Path) -> int:
    """Search vs greedy over the seeded corpus: never worse anywhere,
    strictly better on every expect_win kernel, guard-clean layouts."""
    from repro.optimize import CORPUS, optimize_layout, vet_layout

    obs.reset()
    obs.enable()

    cases = []
    wins = regressions = unsound = missed_wins = 0
    for kernel in CORPUS:
        prog = kernel.program()
        params = kernel.pad_params()
        result, elapsed = timed(lambda: optimize_layout(
            prog, params, beam=8, budget=32, heuristic=kernel.heuristic,
        ))
        greedy = result.incumbent_score.conflicts
        winner = result.winner_score.conflicts
        violations = vet_layout(prog, result.layout)
        if winner > greedy:
            regressions += 1
        if violations:
            unsound += 1
        if winner < greedy:
            wins += 1
        elif kernel.expect_win:
            missed_wins += 1
        cases.append({
            "name": kernel.name,
            "heuristic": kernel.heuristic,
            "expect_win": kernel.expect_win,
            "greedy_conflicts": greedy,
            "search_conflicts": winner,
            "improvement": greedy - winner,
            "winner_from": result.winner_from,
            "scored_predict": result.scored_predict,
            "scored_sim": result.scored_sim,
            "prunes": result.prunes,
            "guard_clean": not violations,
            "elapsed_s": round(elapsed, 3),
        })
        verdict = ("WIN" if winner < greedy
                   else "tie" if winner == greedy else "REGRESSION")
        print(f"  {kernel.name:16s} greedy {greedy:>7d}  "
              f"search {winner:>7d}  {verdict:10s} "
              f"({result.winner_from}, {elapsed:.1f}s)")

    snap = obs.snapshot()
    document = {
        "schema": 1,
        "kind": "optimize-compare",
        "label": args.label,
        "cases": cases,
        "aggregate": {
            "kernels": len(cases),
            "strict_wins": wins,
            "regressions": regressions,
            "unsound_layouts": unsound,
            "missed_expected_wins": missed_wins,
        },
        "optimize_counters": {
            "runs": counter_total(snap, "repro_optimize_runs_total"),
            "candidates_predict": counter_total(
                snap, "repro_optimize_candidates_total", scorer="predict"),
            "candidates_sim": counter_total(
                snap, "repro_optimize_candidates_total", scorer="sim"),
            "prunes": counter_total(snap, "repro_optimize_prunes_total"),
            "improvements": counter_total(
                snap, "repro_optimize_improvements_total"),
        },
    }
    if args.number is not None:
        path = out_dir / f"BENCH_{args.number}.json"
    else:
        path = next_snapshot_path(out_dir)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    print(f"  {wins} strict win(s) on {len(cases)} kernel(s), "
          f"{regressions} regression(s)")
    failed = False
    if regressions:
        print(f"error: the search regressed greedy on {regressions} "
              f"kernel(s) — the incumbent rule is broken", file=sys.stderr)
        failed = True
    if missed_wins:
        print(f"error: {missed_wins} expect_win kernel(s) did not "
              f"strictly beat greedy", file=sys.stderr)
        failed = True
    if unsound:
        print(f"error: {unsound} emitted layout(s) failed the guard "
              f"vet", file=sys.stderr)
        failed = True
    if wins < 3:
        print(f"error: only {wins} strict win(s); the corpus gate "
              f"requires at least 3", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(ROOT),
                        help="directory for BENCH_<n>.json (default repo "
                             "root)")
    parser.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS,
                        help=f"comma-separated benchmark names "
                             f"(default {DEFAULT_BENCHMARKS})")
    parser.add_argument("--jobs", type=int, default=2,
                        help="campaign worker processes (default 2)")
    parser.add_argument("--label", default="",
                        help="free-form note stored in the snapshot")
    parser.add_argument("--compare", action="store_true",
                        help="JIT before/after mode over the perf corpus")
    parser.add_argument("--predict", action="store_true",
                        help="with --compare: gate the analytic miss-"
                             "prediction tier against simulation over "
                             "the eligible corpus")
    parser.add_argument("--optimize", action="store_true",
                        help="with --compare: gate the layout search "
                             "against greedy padding over the seeded "
                             "corpus (never worse, >= 3 strict wins)")
    parser.add_argument("--number", type=int, default=None,
                        help="write BENCH_<number>.json instead of "
                             "auto-numbering")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="exit 1 if the --compare aggregate speedup "
                             "falls below this factor")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per case in --compare mode "
                             "(best-of; default 3)")
    args = parser.parse_args()

    out_dir = pathlib.Path(args.out)
    if not out_dir.is_dir():
        print(f"error: --out {out_dir} is not a directory", file=sys.stderr)
        return 2
    if args.predict and not args.compare:
        print("error: --predict requires --compare", file=sys.stderr)
        return 2
    if args.optimize and not args.compare:
        print("error: --optimize requires --compare", file=sys.stderr)
        return 2
    if args.predict and args.optimize:
        print("error: --predict and --optimize are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.compare:
        if args.predict:
            return predict_compare_main(args, out_dir)
        if args.optimize:
            return optimize_compare_main(args, out_dir)
        return compare_main(args, out_dir)
    benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]

    obs.reset()
    obs.enable()
    spec = parse_spec({
        "name": "bench-snapshot",
        "benchmarks": benchmarks,
        "heuristics": ["pad"],
        "caches": [{"size": "8K", "line": 32}, {"size": "16K", "line": 32}],
        "seed": 1998,
    })
    plan = compile_plan(spec)

    with tempfile.TemporaryDirectory(prefix="bench-snapshot-") as tmp:
        workdir = pathlib.Path(tmp) / "campaign"
        coordinator = Coordinator(plan, workdir, jobs=max(1, args.jobs))
        cold, cold_s = timed(lambda: coordinator.run())
        if not cold.ok:
            print("error: cold campaign had failures; refusing to "
                  "snapshot a broken run", file=sys.stderr)
            return 1

        resumer = Coordinator(plan, workdir, jobs=max(1, args.jobs))
        warm, warm_s = timed(lambda: resumer.run(resume=True))
        if warm.cached != len(plan.items):
            print(f"error: resume re-simulated items "
                  f"({warm.cached}/{len(plan.items)} cached)",
                  file=sys.stderr)
            return 1

        tier = DiskTier(coordinator.tier_path)
        try:
            runner = Runner(tier=tier)

            def run_all():
                for item in plan.items:
                    r = item.request
                    runner.run(
                        r.program, heuristic=r.heuristic, cache=r.cache,
                        size=r.size, pad_cache=r.pad_cache,
                        m_lines=r.m_lines, max_outer=r.max_outer,
                        seed=r.seed,
                    )

            _, disk_pass_s = timed(run_all)
            _, memo_pass_s = timed(run_all)
        finally:
            tier.close()

    snap = obs.snapshot()
    items = len(plan.items)
    document = {
        "schema": 1,
        "label": args.label,
        "campaign": plan.campaign_id,
        "plan": plan.digest,
        "benchmarks": benchmarks,
        "items": items,
        "cold": {
            "duration_s": round(cold_s, 6),
            "items_per_s": round(items / cold_s, 3) if cold_s else None,
        },
        "resume": {
            "duration_s": round(warm_s, 6),
            "cached": warm.cached,
            "items_per_s": round(items / warm_s, 3) if warm_s else None,
        },
        "runner": {
            "disk_pass_s": round(disk_pass_s, 6),
            "memo_pass_s": round(memo_pass_s, 6),
        },
        "tiers": {
            "sqlite_hits": counter_total(
                snap, "repro_runner_memo_hits_total", tier="sqlite"),
            "memory_hits": counter_total(
                snap, "repro_runner_memo_hits_total", tier="memory"),
            "tier_lookups_hit": counter_total(
                snap, "repro_campaign_tier_lookups_total", outcome="hit"),
            "tier_lookups_miss": counter_total(
                snap, "repro_campaign_tier_lookups_total", outcome="miss"),
            "tier_quarantined": counter_total(
                snap, "repro_campaign_tier_quarantined_total"),
        },
        "campaign_counters": {
            "commits": counter_total(snap, "repro_campaign_commits_total"),
            "leases": counter_total(
                snap, "repro_campaign_items_leased_total"),
            "retries": counter_total(snap, "repro_campaign_retries_total"),
            "fallbacks": counter_total(
                snap, "repro_campaign_fallbacks_total"),
        },
    }
    if args.number is not None:
        path = out_dir / f"BENCH_{args.number}.json"
    else:
        path = next_snapshot_path(out_dir)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    print(f"  cold:   {items} items in {cold_s:.2f}s "
          f"({document['cold']['items_per_s']}/s)")
    print(f"  resume: all cached in {warm_s:.2f}s")
    print(f"  runner: disk pass {disk_pass_s:.3f}s, "
          f"memo pass {memo_pass_s:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
