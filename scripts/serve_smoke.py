#!/usr/bin/env python
"""Self-contained smoke test for the analysis service (CI `serve` job).

Boots a real :class:`repro.serve.server.AnalysisServer` on an ephemeral
port, round-trips a pad request over a shipped example kernel, simulates
a benchmark twice (the repeat must come back from the runner memo tier),
and asserts the Prometheus scrape exposes the serve metric families.
Exits nonzero on the first broken expectation.

Usage: PYTHONPATH=src python scripts/serve_smoke.py
"""

import json
import pathlib
import sys
import threading
import urllib.request

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.serve.batching import ServeConfig  # noqa: E402
from repro.serve.server import create_server  # noqa: E402


def post(base, path, payload):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        return json.load(resp)


def main() -> int:
    server = create_server(ServeConfig(port=0, workers=2, engine_jobs=2))
    host, port = server.address
    base = f"http://{host}:{port}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with urllib.request.urlopen(base + "/healthz", timeout=10) as resp:
            health = json.load(resp)
        assert health["status"] == "ok", health
        print(f"healthz ok on {base}")

        source = (ROOT / "examples" / "kernels" / "dot.dsl").read_text()
        padded = post(base, "/v1/pad", {"source": source})
        assert padded["total_bytes"] > 0, padded
        print(f"pad ok: {padded['program']} -> {padded['total_bytes']} bytes")

        body = {"program": "mult", "size": 32}
        first = post(base, "/v1/simulate", body)
        assert first["status"] in ("ok", "degraded", "cached"), first
        repeat = post(base, "/v1/simulate", body)
        assert repeat["status"] == "cached", (
            f"repeat did not hit the memo tier: {repeat}"
        )
        print("simulate ok: repeat served from memo")

        with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
            scrape = resp.read().decode()
        for family in (
            "repro_serve_requests_total",
            "repro_serve_request_seconds",
            "repro_serve_queue_depth",
            "repro_runner_memo_hits_total",
        ):
            assert family in scrape, f"{family} missing from /metrics"
        print("metrics scrape ok: all serve families present")
        return 0
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


if __name__ == "__main__":
    sys.exit(main())
