#!/usr/bin/env python
"""Availability SLO storm for ``repro serve`` (CI resilience job).

Runs one self-healing serving instance under a seeded chaos schedule
(worker kills, stalls, injected errors, torn pipe writes, corrupted
payloads) while 40 concurrent clients hammer the full endpoint mix, and
a saboteur SIGSTOPs a warm engine worker mid-storm.  The gate:

1. **Availability** — at least 99% of responses are non-5xx.  Load
   shedding (429) and degraded answers are fine; silent failure is not.
2. **Honest degradation** — every degraded answer says ``degraded:
   true`` and carries ``error_bound_pct``; no answer is both degraded
   and missing its bound.
3. **Exactness** — every full-fidelity simulate answer (status ``ok`` /
   ``cached``) is byte-identical to the same request's answer from a
   fault-free reference instance.  Chaos may slow or degrade answers,
   never corrupt them.
4. **Self-healing** — the SIGSTOPped worker is detected as wedged and
   respawned (``repro_resilience_wedged_total`` and
   ``repro_resilience_respawns_total`` both move), and the pool is back
   to full capacity with a healthy supervisor when the storm ends.

Usage: PYTHONPATH=src python scripts/chaos_slo.py [--clients 40]
       [--requests 8] [--seed 7]
"""

import argparse
import json
import os
import pathlib
import signal
import sys
import threading
import time
import urllib.error
import urllib.request

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.chaos import parse_schedule  # noqa: E402
from repro.obs import runtime as obs  # noqa: E402
from repro.serve.batching import ServeConfig  # noqa: E402
from repro.serve.server import create_server  # noqa: E402

#: sustained worker-fault storm; seeded, so every run injects the same
#: faults at the same (request, attempt) points
SCHEDULE = {
    "seed": 7,
    "worker": {
        "kill": 0.04, "slow": 0.06, "slow_s": 0.15,
        "error": 0.04, "corrupt": 0.04, "torn": 0.03,
    },
}

SOURCE = (ROOT / "examples" / "kernels" / "matmul.dsl").read_text()

#: the simulate-program mix clients draw from (small, fast benchmarks)
PROGRAMS = [
    {"program": "dot", "heuristic": "original"},
    {"program": "dot", "heuristic": "pad"},
    {"program": "jacobi", "heuristic": "original", "size": 48},
    {"program": "jacobi", "heuristic": "pad", "size": 48},
    {"program": "mult", "heuristic": "original", "size": 24},
    {"program": "mult", "heuristic": "pad", "size": 24},
]


def post(base, path, payload, timeout=90):
    request = urllib.request.Request(
        f"{base}{path}", data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def start_server(chaos):
    config = ServeConfig(
        port=0, workers=4, queue_depth=64, engine_jobs=4,
        timeout_s=60.0, engine_retries=1, heartbeat_s=0.2, chaos=chaos,
    )
    server = create_server(config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.address
    return server, thread, f"http://{host}:{port}"


def stop_server(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def canonical(record):
    return json.dumps(record, sort_keys=True).encode()


def build_reference():
    """Fault-free answers for every request in the storm mix."""
    server, thread, base = start_server(chaos=None)
    try:
        reference = {}
        for item in PROGRAMS:
            code, body = post(base, "/v1/simulate", dict(item))
            if code != 200 or body.get("stats") is None:
                raise SystemExit(
                    f"FAIL [reference]: {item} answered {code}: {body}"
                )
            reference[canonical(item).decode()] = canonical(body["stats"])
        return reference
    finally:
        stop_server(server, thread)


class Storm:
    def __init__(self, base, reference, clients, requests_each, seed):
        self.base = base
        self.reference = reference
        self.clients = clients
        self.requests_each = requests_each
        self.seed = seed
        self.lock = threading.Lock()
        self.codes = {}
        self.violations = []
        self.degraded = 0
        self.exact_checked = 0

    def note(self, code):
        with self.lock:
            self.codes[code] = self.codes.get(code, 0) + 1

    def violation(self, message):
        with self.lock:
            self.violations.append(message)

    def client(self, index):
        # deterministic per-client request mix without the random module
        for n in range(self.requests_each):
            pick = (self.seed + index * 31 + n * 7) % 10
            if pick < 5:
                item = PROGRAMS[(index + n) % len(PROGRAMS)]
                code, body = post(self.base, "/v1/simulate", dict(item))
                self.note(code)
                if code == 200:
                    self.check_simulate(item, body)
            elif pick < 7:
                code, body = post(
                    self.base, "/v1/run",
                    {"items": [dict(p) for p in PROGRAMS[:2]]},
                )
                self.note(code)
                if code == 200:
                    for record in body.get("outcomes", []):
                        self.check_record(record)
            elif pick < 9:
                code, _ = post(self.base, "/v1/pad", {"source": SOURCE})
                self.note(code)
            else:
                code, _ = post(self.base, "/v1/lint", {"source": SOURCE})
                self.note(code)

    def check_simulate(self, item, body):
        self.check_record(body)
        if body.get("status") in ("ok", "cached") and body.get("stats"):
            want = self.reference[canonical(item).decode()]
            got = canonical(body["stats"])
            with self.lock:
                self.exact_checked += 1
            if got != want:
                self.violation(
                    f"committed result for {item} differs from the "
                    f"fault-free reference: {got!r} != {want!r}"
                )

    def check_record(self, record):
        status = record.get("status")
        if status == "degraded" and record.get("stats") is None:
            # the estimator path: must be flagged and bounded
            with self.lock:
                self.degraded += 1
            if record.get("degraded") is not True:
                self.violation(f"unflagged degraded answer: {record}")
            if "error_bound_pct" not in record:
                self.violation(f"degraded answer without bound: {record}")

    def run(self):
        threads = [
            threading.Thread(target=self.client, args=(i,), daemon=True)
            for i in range(self.clients)
        ]
        for thread in threads:
            thread.start()
        return threads


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=40)
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per client (default 8)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--budget-pct", type=float, default=1.0,
                        help="max 5xx percentage (default 1.0)")
    args = parser.parse_args()

    print("building fault-free reference ...")
    reference = build_reference()
    print(f"ok [reference]: {len(reference)} exact answers pinned")

    schedule = dict(SCHEDULE, seed=args.seed)
    chaos = parse_schedule(schedule)
    print(f"chaos: {json.dumps(chaos.describe())}")
    server, thread, base = start_server(chaos)
    supervisor = server.service._pool
    try:
        storm = Storm(base, reference, args.clients, args.requests,
                      args.seed)
        clients = storm.run()

        # mid-storm sabotage: wedge one warm worker (alive, silent)
        time.sleep(1.0)
        with supervisor._lock:
            idle = list(supervisor.pool._idle)
        if idle:
            os.kill(idle[0].proc.pid, signal.SIGSTOP)
            print(f"saboteur: SIGSTOPped worker pid {idle[0].proc.pid}")
        else:
            print("saboteur: no idle worker to wedge (pool saturated)")

        for client in clients:
            client.join(timeout=600)
        if any(c.is_alive() for c in clients):
            raise SystemExit("FAIL: storm clients did not finish")

        # brownout probe: force degraded mode and ask for a program the
        # memo tier has never seen, so gate 2 is exercised every run
        server.service.config.brownout = True
        code, body = post(
            base, "/v1/simulate", {"program": "jacobi", "size": 40}
        )
        storm.note(code)
        if code != 200 or body.get("status") != "degraded":
            storm.violation(
                f"brownout probe was not degraded: {code} {body}"
            )
        else:
            storm.check_record(body)
        server.service.config.brownout = False

        # let the supervisor finish healing before the capacity check
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            health = supervisor.health()
            if (health["idle"] + health["leased"] == health["capacity"]
                    and health["healthy"]):
                break
            time.sleep(0.2)
        health = supervisor.health()
    finally:
        stop_server(server, thread)

    total = sum(storm.codes.values())
    fives = sum(n for code, n in storm.codes.items() if code >= 500)
    pct = 100.0 * fives / total if total else 0.0
    print(f"storm: {total} responses, codes={dict(sorted(storm.codes.items()))}")
    print(f"storm: {fives} server errors ({pct:.2f}%), "
          f"{storm.degraded} degraded answers, "
          f"{storm.exact_checked} exact answers checked byte-identical")

    failures = list(storm.violations)
    if pct > args.budget_pct:
        failures.append(
            f"availability: {pct:.2f}% 5xx exceeds the "
            f"{args.budget_pct}% budget"
        )
    if health["idle"] + health["leased"] != health["capacity"]:
        failures.append(
            f"pool did not recover to full capacity: {health}"
        )
    if not health["healthy"]:
        failures.append(f"supervisor unhealthy after the storm: {health}")
    if storm.degraded < 1:
        failures.append(
            "no degraded answer was observed (the brownout probe should "
            "have produced at least one)"
        )

    counters = {
        (c["name"]): c["value"]
        for c in obs.snapshot()["counters"]
        if c["name"].startswith("repro_resilience_")
    }
    print(f"resilience metrics: {counters}")
    if counters.get("repro_resilience_wedged_total", 0) < 1:
        failures.append(
            "the SIGSTOPped worker was never detected as wedged "
            "(repro_resilience_wedged_total did not move)"
        )
    if counters.get("repro_resilience_respawns_total", 0) < 1:
        failures.append(
            "no automatic respawn happened "
            "(repro_resilience_respawns_total did not move)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("chaos SLO: all gates pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
