#!/usr/bin/env python
"""Crash-resume chaos harness for ``repro campaign`` (CI chaos job).

Proves the coordinator's durability story end to end, from outside the
process, the way an operator would experience it:

1. **Reference** — run a small campaign fault-free and keep its
   ``results.json`` as ground truth.
2. **Self-kill** — run the same campaign with ``ckill=2``: the
   coordinator ``os._exit(137)``'s right after its second durable
   commit (between the disk-tier write and the journal event — the
   most adversarial instant).  ``campaign resume`` must finish it.
3. **External SIGKILL** — start the campaign again, watch the journal
   until at least one item has committed, then SIGKILL the whole
   process group mid-flight.  Resume must finish this one too.
4. **Tier corruption** — flip checksums on half the committed rows of
   the killed campaign's SQLite tier before resuming; the resume must
   quarantine (never crash on) every corrupted row and re-simulate
   exactly those items.

After every resume the harness asserts ``results.json`` is
byte-identical to the reference, and replays the journal to prove no
item committed before a kill was simulated again afterwards (rows
deliberately corrupted in step 4 are exempt — those *must* re-run).

Usage: PYTHONPATH=src python scripts/campaign_chaos.py [--keep]
"""

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.chaos.report import (  # noqa: E402
    committed_items,
    leased_after_resume,
    quarantined_items,
)
from repro.engine.faults import corrupt_disk_tier  # noqa: E402

SPEC = {
    "name": "chaos",
    "benchmarks": ["dot", "jacobi"],
    "heuristics": ["pad", "original"],
    "caches": [{"size": "8K", "line": 32}],
    "seed": 1998,
}
#: the self-kill scenarios drive the unified repro.chaos schedule format
#: through the CLI (--chaos), the same plumbing `repro serve --chaos` uses
CKILL_SCHEDULE = {"seed": 1998, "campaign": {"ckill": 2}}
KILL_EXIT = 137


def campaign_cmd(*tail):
    return [sys.executable, "-m", "repro", "campaign", *tail]


def run_cli(argv, timeout=180, expect=0):
    """Run a CLI command in its own process group; reap stragglers."""
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    proc = subprocess.Popen(
        argv, env=env, cwd=ROOT, start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        out, _ = proc.communicate(timeout=timeout)
    finally:
        _kill_group(proc)
    if proc.returncode != expect:
        print(out)
        raise SystemExit(
            f"FAIL: {' '.join(argv[2:])} exited {proc.returncode}, "
            f"expected {expect}"
        )
    return out


def _kill_group(proc):
    """SIGKILL everything in the subprocess's session (orphans too)."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass


def assert_identical(results_path, reference_bytes, label):
    got = results_path.read_bytes()
    if got != reference_bytes:
        raise SystemExit(
            f"FAIL [{label}]: {results_path} differs from the "
            f"fault-free reference"
        )
    print(f"ok [{label}]: results byte-identical to reference")


def assert_no_resimulation(workdir, committed_before, label, exempt=()):
    resimulated = set(leased_after_resume(workdir / "journal.jsonl"))
    violations = (set(committed_before) - set(exempt)) & resimulated
    if violations:
        raise SystemExit(
            f"FAIL [{label}]: resume re-simulated already-committed "
            f"items: {sorted(violations)}"
        )
    print(f"ok [{label}]: zero committed items re-simulated "
          f"({len(committed_before)} were already durable)")


def external_kill_run(spec_path, workdir):
    """Start a campaign, SIGKILL its process group after one commit."""
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    proc = subprocess.Popen(
        campaign_cmd("run", str(spec_path), "--workdir", str(workdir),
                     "--jobs", "2"),
        env=env, cwd=ROOT, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    journal = workdir / "journal.jsonl"
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise SystemExit(
                    "FAIL [sigkill]: campaign finished before the "
                    "harness could kill it — enlarge the spec"
                )
            if journal.exists() and committed_items(journal):
                break
            time.sleep(0.02)
        else:
            raise SystemExit(
                "FAIL [sigkill]: no item committed within 120s"
            )
    finally:
        _kill_group(proc)
    proc.wait(timeout=30)
    print(f"ok [sigkill]: killed pid {proc.pid} after "
          f"{len(committed_items(journal))} commit(s)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory for inspection")
    args = parser.parse_args()

    scratch = pathlib.Path(tempfile.mkdtemp(prefix="campaign-chaos-"))
    spec_path = scratch / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    schedule_path = scratch / "chaos.json"
    schedule_path.write_text(json.dumps(CKILL_SCHEDULE))
    print(f"scratch: {scratch}")

    # 1. fault-free reference
    ref_dir = scratch / "reference"
    run_cli(campaign_cmd("run", str(spec_path), "--workdir", str(ref_dir),
                         "--jobs", "2"))
    reference = (ref_dir / "results.json").read_bytes()
    print(f"ok [reference]: {len(committed_items(ref_dir / 'journal.jsonl'))}"
          " items committed fault-free")

    # 2. coordinator self-kill after the 2nd durable commit
    ckill_dir = scratch / "ckill"
    run_cli(campaign_cmd("run", str(spec_path), "--workdir", str(ckill_dir),
                         "--jobs", "2", "--chaos", str(schedule_path)),
            expect=KILL_EXIT)
    committed = committed_items(ckill_dir / "journal.jsonl")
    print(f"ok [ckill]: coordinator died with exit {KILL_EXIT} after "
          f"{len(committed)} journaled commit(s)")
    run_cli(campaign_cmd("resume", str(spec_path), "--workdir",
                         str(ckill_dir), "--jobs", "2"))
    assert_identical(ckill_dir / "results.json", reference, "ckill")
    assert_no_resimulation(ckill_dir, committed, "ckill")

    # 3. external SIGKILL of the whole process group mid-campaign
    sigkill_dir = scratch / "sigkill"
    external_kill_run(spec_path, sigkill_dir)
    committed = committed_items(sigkill_dir / "journal.jsonl")
    run_cli(campaign_cmd("resume", str(spec_path), "--workdir",
                         str(sigkill_dir), "--jobs", "2"))
    assert_identical(sigkill_dir / "results.json", reference, "sigkill")
    assert_no_resimulation(sigkill_dir, committed, "sigkill")

    # 4. corrupt the durable tier of a killed campaign, then resume
    corrupt_dir = scratch / "corrupt"
    run_cli(campaign_cmd("run", str(spec_path), "--workdir",
                         str(corrupt_dir), "--jobs", "2",
                         "--chaos", str(schedule_path)),
            expect=KILL_EXIT)
    committed = committed_items(corrupt_dir / "journal.jsonl")
    flipped = corrupt_disk_tier(corrupt_dir / "campaign.db", 0.5, seed=7)
    print(f"ok [corrupt]: flipped checksums on {flipped} committed row(s)")
    run_cli(campaign_cmd("resume", str(spec_path), "--workdir",
                         str(corrupt_dir), "--jobs", "2"))
    quarantined = quarantined_items(corrupt_dir / "journal.jsonl")
    if flipped and not quarantined:
        raise SystemExit(
            "FAIL [corrupt]: corrupted rows were not quarantined"
        )
    assert_identical(corrupt_dir / "results.json", reference, "corrupt")
    assert_no_resimulation(corrupt_dir, committed, "corrupt",
                           exempt=quarantined)
    print(f"ok [corrupt]: {len(quarantined)} corrupted row(s) "
          "quarantined and re-simulated")

    if args.keep:
        print(f"kept scratch at {scratch}")
    else:
        import shutil

        shutil.rmtree(scratch, ignore_errors=True)
    print("campaign chaos: all scenarios pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
